//! The STLB-prefetcher interface shared by Morrigan and every baseline.
//!
//! The contract mirrors §2.1 of the paper: the prefetch logic is engaged on
//! every instruction-STLB miss (whether the prefetch buffer hit or not), may
//! emit any number of prefetch requests, and receives credit feedback when a
//! prefetch it issued later eliminates a demand page walk (a PB hit), which
//! is how IRIP's confidence counters are trained.

use serde::{Deserialize, Serialize};

use crate::addr::{VirtAddr, VirtPage};

/// Identifies a hardware thread on an SMT core (§4.3: the IRIP tables are
/// shared between threads, but the previous-miss register is per thread).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Thread 0, the only thread on a single-threaded core.
    pub const ZERO: ThreadId = ThreadId(0);
}

/// A signed distance between two virtual pages, as stored in IRIP's
/// prediction slots.
///
/// The paper stores 15-bit distances instead of full 36-bit VPNs (§4.1.1,
/// §6.1); [`PageDistance::fits_bits`] checks representability for a given
/// slot width.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageDistance(pub i64);

impl PageDistance {
    /// Distance from `from` to `to` (positive when `to` is above `from`).
    ///
    /// ```
    /// use morrigan_types::addr::VirtPage;
    /// use morrigan_types::prefetcher::PageDistance;
    /// let d = PageDistance::between(VirtPage::new(0xb5), VirtPage::new(0xa1));
    /// assert_eq!(d.0, -20);
    /// ```
    #[inline]
    pub fn between(from: VirtPage, to: VirtPage) -> Self {
        PageDistance(to.distance_from(from))
    }

    /// Whether this distance is representable as a signed `bits`-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    #[inline]
    pub fn fits_bits(self, bits: u32) -> bool {
        assert!((1..=63).contains(&bits), "bit width must be in 1..=63");
        let max = (1i64 << (bits - 1)) - 1;
        let min = -(1i64 << (bits - 1));
        (min..=max).contains(&self.0)
    }

    /// Applies this distance to a page.
    #[inline]
    pub fn apply(self, page: VirtPage) -> VirtPage {
        page.offset(self.0)
    }
}

/// Everything a prefetcher may key on when an iSTLB miss occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissContext {
    /// The virtual page whose translation missed in the STLB.
    pub vpn: VirtPage,
    /// Program counter of the instruction whose fetch triggered the miss
    /// (the feature ASP indexes on).
    pub pc: VirtAddr,
    /// Hardware thread that triggered the miss.
    pub thread: ThreadId,
    /// Whether the missing translation was found in the prefetch buffer
    /// (the prefetcher is engaged on both PB hits and PB misses, §2.1).
    pub pb_hit: bool,
    /// Current simulation cycle, for prefetchers with time-based heuristics.
    pub cycle: u64,
}

/// Identifies the prediction-table slot that produced a prefetch so a later
/// PB hit can credit the right confidence counter (§4.2 step 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchOrigin {
    /// The miss page whose prediction-table entry produced the prefetch.
    pub source: VirtPage,
    /// The predicted distance stored in the producing slot.
    pub distance: PageDistance,
}

/// The engine inside a composite prefetcher that produced a decision, so
/// the observability layer can attribute every prefetch's fate (fill, PB
/// hit, unused eviction) back to the component that asked for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchComponent {
    /// One of IRIP's prediction tables, by table index (0 = 1-slot table).
    IripTable(u8),
    /// The sequential-distance prefetcher engaged when IRIP stays silent.
    Sdp,
    /// The FNL+MMA front-end path: translations fetched ahead of i-cache
    /// prefetches crossing a page boundary.
    Icache,
    /// Any engine without finer-grained attribution (the dSTLB baselines,
    /// SP/ASP/DP/MP, and the unbounded Markov variants).
    Other,
}

impl PrefetchComponent {
    /// Dense index for per-component counter arrays. IRIP tables above 3
    /// fold into the last table bucket so the array stays fixed-size even
    /// for tuning configs with more tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PrefetchComponent::IripTable(t) => (t as usize).min(3),
            PrefetchComponent::Sdp => 4,
            PrefetchComponent::Icache => 5,
            PrefetchComponent::Other => 6,
        }
    }

    /// Number of dense component buckets (`index()` range).
    pub const COUNT: usize = 7;
}

/// A state transition inside a prefetcher that the observability layer
/// wants on the event timeline but that happens out of the MMU's sight —
/// today, replacement-policy evictions inside IRIP's prediction tables.
/// Captured only when event capture is enabled (see
/// [`TlbPrefetcher::set_event_capture`]); the disabled path records
/// nothing and costs one branch on the rare eviction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherEvent {
    /// The replacement policy evicted a valid entry from prediction table
    /// `table`; `vpn` is the victim's tag (the miss page it predicted for).
    TableEvict {
        /// Index of the table the entry was evicted from.
        table: u8,
        /// The victim entry's tag VPN.
        vpn: VirtPage,
    },
}

/// One prefetch request emitted by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchDecision {
    /// The virtual page whose PTE should be fetched into the PB.
    pub vpn: VirtPage,
    /// Whether to also install the PTEs sharing the target PTE's cache line
    /// ("lookahead"/spatial prefetching via page-table locality, §4.1.1;
    /// Morrigan sets this only for the highest-confidence prediction).
    pub spatial: bool,
    /// Provenance for confidence-training feedback; `None` for prefetchers
    /// without trained state (e.g. SP/SDP).
    pub origin: Option<PrefetchOrigin>,
    /// Which engine inside the prefetcher produced this request.
    pub component: PrefetchComponent,
}

impl PrefetchDecision {
    /// A plain prefetch of `vpn` with no spatial component and no origin.
    pub fn plain(vpn: VirtPage) -> Self {
        PrefetchDecision {
            vpn,
            spatial: false,
            origin: None,
            component: PrefetchComponent::Other,
        }
    }

    /// A prefetch of `vpn` that also pulls in the cache-line-adjacent PTEs.
    pub fn spatial(vpn: VirtPage) -> Self {
        PrefetchDecision {
            vpn,
            spatial: true,
            origin: None,
            component: PrefetchComponent::Other,
        }
    }

    /// Attaches provenance to this decision.
    pub fn with_origin(mut self, origin: PrefetchOrigin) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Tags the decision with the component that produced it.
    pub fn with_component(mut self, component: PrefetchComponent) -> Self {
        self.component = component;
        self
    }
}

/// An STLB prefetcher engaged on instruction-STLB misses.
///
/// Implementors: Morrigan ([IRIP]+[SDP]), the dSTLB baselines (SP, ASP, DP,
/// MP), Morrigan-mono, and the idealized unbounded Markov variants.
///
/// The `Send` bound lets a boxed prefetcher move into a worker thread: the
/// experiment runner executes each simulation on a pool thread, and every
/// prefetcher owns plain table state, so the bound costs implementors
/// nothing.
///
/// [IRIP]: https://doi.org/10.1145/3466752.3480049
/// [SDP]: https://doi.org/10.1145/3466752.3480049
pub trait TlbPrefetcher: Send {
    /// Short identifier used in experiment output (e.g. `"morrigan"`).
    fn name(&self) -> &'static str;

    /// Called on every iSTLB miss. Pushes zero or more prefetch requests
    /// into `out` (reused by the caller to avoid per-miss allocation).
    ///
    /// The caller (the simulated MMU) is responsible for dropping requests
    /// whose translation already resides in the PB and for performing the
    /// prefetch page walks.
    fn on_stlb_miss(&mut self, ctx: &MissContext, out: &mut Vec<PrefetchDecision>);

    /// Called when a prefetch this prefetcher issued produced a PB hit,
    /// eliminating a demand walk. Default: no trained state, ignore.
    fn on_prefetch_hit(&mut self, origin: &PrefetchOrigin) {
        let _ = origin;
    }

    /// Flushes all prediction state (context switch, §4.3).
    fn flush(&mut self) {}

    /// Total prediction-state storage in bits, for ISO-storage comparisons
    /// (§6.2, §6.3). Stateless prefetchers report 0.
    fn storage_bits(&self) -> u64;

    /// Turns internal event capture on or off. Only the traced MMU enables
    /// this; the default implementation (and the disabled state) records
    /// nothing, so untraced runs pay nothing.
    fn set_event_capture(&mut self, on: bool) {
        let _ = on;
    }

    /// Moves captured [`PrefetcherEvent`]s into `out`, oldest first. The
    /// traced MMU drains after every `on_stlb_miss` call, so capture
    /// buffers stay small. Default: nothing to drain.
    fn drain_events(&mut self, out: &mut Vec<PrefetcherEvent>) {
        let _ = out;
    }

    /// Downcast hook for tests and analysis tooling that need a concrete
    /// prefetcher's internal statistics. Default: no downcast available.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// A prefetcher that never prefetches; the paper's no-prefetching baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl TlbPrefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_stlb_miss(&mut self, _ctx: &MissContext, _out: &mut Vec<PrefetchDecision>) {}

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_between_matches_paper_example() {
        // Fig 11: current miss 0xA1, previous miss 0xB5 → distance -20
        // (0xA1 - 0xB5); the paper's rendered figure stores the magnitude
        // with direction, we keep it signed.
        let d = PageDistance::between(VirtPage::new(0xb5), VirtPage::new(0xa1));
        assert_eq!(d.apply(VirtPage::new(0xb5)), VirtPage::new(0xa1));
    }

    #[test]
    fn fits_bits_boundaries() {
        assert!(PageDistance(16383).fits_bits(15));
        assert!(!PageDistance(16384).fits_bits(15));
        assert!(PageDistance(-16384).fits_bits(15));
        assert!(!PageDistance(-16385).fits_bits(15));
        assert!(PageDistance(0).fits_bits(1));
        assert!(PageDistance(-1).fits_bits(1));
        assert!(!PageDistance(1).fits_bits(1));
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn fits_bits_rejects_zero_width() {
        let _ = PageDistance(0).fits_bits(0);
    }

    #[test]
    fn null_prefetcher_is_silent() {
        let mut p = NullPrefetcher;
        let ctx = MissContext {
            vpn: VirtPage::new(1),
            pc: VirtAddr::new(0x400000),
            thread: ThreadId::ZERO,
            pb_hit: false,
            cycle: 0,
        };
        let mut out = Vec::new();
        p.on_stlb_miss(&ctx, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn decision_builders() {
        let origin = PrefetchOrigin {
            source: VirtPage::new(5),
            distance: PageDistance(2),
        };
        let d = PrefetchDecision::spatial(VirtPage::new(7)).with_origin(origin);
        assert!(d.spatial);
        assert_eq!(d.origin, Some(origin));
        assert_eq!(d.vpn, VirtPage::new(7));
        let p = PrefetchDecision::plain(VirtPage::new(7));
        assert!(!p.spatial);
        assert!(p.origin.is_none());
    }
}
