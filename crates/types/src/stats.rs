//! Counters and aggregate statistics shared across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A saturating up-counter with a configurable ceiling, e.g. the 2-bit
/// confidence counters attached to IRIP prediction slots (§6.1).
///
/// ```
/// use morrigan_types::stats::SatCounter;
/// let mut c = SatCounter::with_bits(2);
/// for _ in 0..10 { c.increment(); }
/// assert_eq!(c.value(), 3); // saturates at 2^2 - 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// A counter saturating at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero (a counter that cannot count is a bug).
    pub fn new(max: u32) -> Self {
        assert!(max > 0, "saturating counter ceiling must be positive");
        Self { value: 0, max }
    }

    /// A counter saturating at `2^bits - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn with_bits(bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "counter width must be in 1..=31");
        Self::new((1u32 << bits) - 1)
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The saturation ceiling.
    #[inline]
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Increments, saturating at the ceiling.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Resets to zero (slot replacement resets confidence, §4.1.1).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Whether the counter sits at its ceiling.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max
    }
}

impl Default for SatCounter {
    /// A 2-bit counter, the width the paper uses for prediction slots.
    fn default() -> Self {
        Self::with_bits(2)
    }
}

/// A hit/total ratio that formats as a percentage and never divides by zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Ratio {
    /// Numerator (e.g. hits, covered misses).
    pub part: u64,
    /// Denominator (e.g. lookups, baseline misses).
    pub total: u64,
}

impl Ratio {
    /// Builds a ratio from raw counts.
    pub fn new(part: u64, total: u64) -> Self {
        Self { part, total }
    }

    /// Records one event, hit or not.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.part += 1;
        }
    }

    /// The fraction `part / total`, or 0.0 when the denominator is zero.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.part as f64 / self.total as f64
        }
    }

    /// The fraction as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}% ({}/{})", self.percent(), self.part, self.total)
    }
}

/// Geometric mean of a sequence of positive values; the aggregation the
/// paper uses for speedups ("geometric mean performance", §1, §6.2).
///
/// Returns 0.0 for an empty slice (there is no meaningful mean, and 0 is an
/// obviously-wrong sentinel that surfaces misuse in plots).
///
/// # Panics
///
/// Panics if any value is non-positive: a non-positive speedup indicates a
/// broken experiment, not a valid data point.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Misses per kilo-instruction, the MPKI metric used throughout §3.
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_saturates_both_ways() {
        let mut c = SatCounter::with_bits(2);
        assert_eq!(c.value(), 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..5 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        c.decrement();
        assert_eq!(c.value(), 2);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "ceiling must be positive")]
    fn sat_counter_rejects_zero_ceiling() {
        let _ = SatCounter::new(0);
    }

    #[test]
    fn ratio_handles_zero_total() {
        let r = Ratio::default();
        assert_eq!(r.fraction(), 0.0);
        assert_eq!(r.percent(), 0.0);
    }

    #[test]
    fn ratio_records() {
        let mut r = Ratio::default();
        r.record(true);
        r.record(false);
        r.record(true);
        assert_eq!(r.part, 2);
        assert_eq!(r.total, 3);
        assert!((r.fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(format!("{r}"), "66.67% (2/3)");
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn mpki_math() {
        assert_eq!(mpki(0, 0), 0.0);
        assert!((mpki(1500, 1_000_000) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
