//! Chunked, autovectorizable tag-scan kernels for the SoA
//! set-associative structures (TLB sets, PSC sets, cache sets).
//!
//! Every lookup hot path in the simulator reduces to "find the first
//! slot in a short `u64` tag array equal to a key" and every fill path
//! to "find the hit slot, else the LRU victim". The naive
//! `iter().position(..)` form compiles to a compare-and-branch per way;
//! the kernels here accumulate a branch-free equality bitmask over the
//! whole set instead, which LLVM lowers to one or two `u64x8`-style
//! vector compares plus a movemask for the 4/6/8/16-way geometries the
//! simulator configures. Semantics are pinned to the scalar forms by
//! the equality tests at the bottom of this module — callers may treat
//! the kernels as drop-in replacements, which is what keeps
//! full-fidelity simulator output byte-identical.
//!
//! [`prefetch_tags`] issues a software prefetch of a set's tag array so
//! batched probes (the sampled fast-forward path decodes up to
//! [`BATCH`] upcoming accesses per block) can overlap the tag-array
//! loads of the next set with the scan of the current one. It is a
//! hint: a no-op on non-x86_64 targets and never required for
//! correctness.

/// Maximum number of keys a batched probe inspects per decoded block.
pub const BATCH: usize = 8;

/// Widest set the branch-free kernels cover with a single `u64` mask;
/// wider slices (none are configured today) fall back to the scalar
/// scan they are pinned against.
const MASK_WIDTH: usize = 64;

/// First index in `tags` equal to `key`.
///
/// Semantically identical to `tags.iter().position(|&t| t == key)`;
/// the loop is branch-free so the per-way compares vectorize.
#[inline(always)]
pub fn find_tag(tags: &[u64], key: u64) -> Option<usize> {
    if tags.len() > MASK_WIDTH {
        return tags.iter().position(|&t| t == key);
    }
    let mut mask: u64 = 0;
    for (i, &t) in tags.iter().enumerate() {
        mask |= ((t == key) as u64) << i;
    }
    if mask != 0 {
        Some(mask.trailing_zeros() as usize)
    } else {
        None
    }
}

/// Replacement scan for a fill: the first slot whose tag equals `key`
/// (`hit == true`), else the first slot holding the minimum stamp
/// (`hit == false`). With the stamp-0-is-empty encoding the SoA
/// structures use, the returned victim is an empty way when one exists
/// and the true LRU way otherwise.
///
/// Identical to the fused compare-and-track scalar loop it replaced:
/// strict-less-than argmin keeps the first occurrence of the minimum,
/// and a two-pass min + first-position-of-min returns that same slot.
/// `tags` and `stamps` must be the same length and non-empty.
#[inline(always)]
pub fn find_hit_or_victim(tags: &[u64], stamps: &[u64], key: u64) -> (usize, bool) {
    debug_assert_eq!(tags.len(), stamps.len());
    debug_assert!(!tags.is_empty());
    if let Some(way) = find_tag(tags, key) {
        return (way, true);
    }
    let min = stamps.iter().copied().min().expect("non-empty set");
    let way = find_tag(stamps, min).expect("min came from this slice");
    (way, false)
}

/// Software-prefetches the cache line(s) holding `tags` into L1.
///
/// A pure scheduling hint for batched probes that know the next set
/// they will scan; correctness never depends on it.
#[inline(always)]
pub fn prefetch_tags(tags: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // A 16-way set of u64 tags spans two 64-byte lines; prefetch
        // both ends so any configured geometry is covered.
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let base = tags.as_ptr() as *const i8;
        _mm_prefetch(base, _MM_HINT_T0);
        if tags.len() > 8 {
            _mm_prefetch(base.add(tags.len() - 1).cast(), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = tags;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The scalar reference the kernels are pinned against.
    fn scalar_find(tags: &[u64], key: u64) -> Option<usize> {
        tags.iter().position(|&t| t == key)
    }

    /// The fused compare-and-track loop `Tlb::insert` and `Cache::fill`
    /// used before the kernels existed (early break on hit, strict
    /// less-than victim tracking).
    fn scalar_hit_or_victim(tags: &[u64], stamps: &[u64], key: u64) -> (usize, bool) {
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for (way, (&t, &s)) in tags.iter().zip(stamps).enumerate() {
            if t == key {
                return (way, true);
            }
            if s < victim_stamp {
                victim = way;
                victim_stamp = s;
            }
        }
        (victim, false)
    }

    #[test]
    fn find_tag_matches_position_on_configured_geometries() {
        // Every set geometry the simulator configures: 4-way (dtlb,
        // psc), 6-way (stlb), 8-way (itlb, l1), 16-way (llc).
        for ways in [1, 4, 6, 8, 16] {
            let tags: Vec<u64> = (0..ways as u64).map(|i| i * 7 + 3).collect();
            for key in 0..(ways as u64 * 8) {
                assert_eq!(find_tag(&tags, key), scalar_find(&tags, key));
            }
            // Duplicate tags: first match must win.
            let dup = vec![9u64; ways];
            assert_eq!(find_tag(&dup, 9), Some(0));
        }
    }

    #[test]
    fn hit_or_victim_prefers_hit_then_first_min_stamp() {
        let tags = [10, 20, 30, 40];
        let stamps = [5, 2, 2, 7];
        assert_eq!(find_hit_or_victim(&tags, &stamps, 30), (2, true));
        // No hit: first of the two minimum stamps wins, like the
        // strict-less-than tracker.
        assert_eq!(find_hit_or_victim(&tags, &stamps, 99), (1, false));
        assert_eq!(
            find_hit_or_victim(&tags, &stamps, 99),
            scalar_hit_or_victim(&tags, &stamps, 99)
        );
    }

    #[test]
    fn prefetch_is_a_safe_hint() {
        prefetch_tags(&[1, 2, 3, 4]);
        prefetch_tags(&vec![0u64; 16]);
    }

    proptest! {
        #[test]
        fn find_tag_equals_scalar(
            tags in prop::collection::vec(0u64..32, 1..80),
            key in 0u64..32,
        ) {
            prop_assert_eq!(find_tag(&tags, key), scalar_find(&tags, key));
        }

        #[test]
        fn hit_or_victim_equals_fused_scalar(
            pairs in prop::collection::vec((0u64..16, 0u64..8), 1..20),
            key in 0u64..16,
        ) {
            let tags: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let stamps: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            prop_assert_eq!(
                find_hit_or_victim(&tags, &stamps, key),
                scalar_hit_or_victim(&tags, &stamps, key)
            );
        }
    }
}
