//! Small deterministic pseudo-random number generators.
//!
//! The workspace deliberately avoids an external RNG dependency: synthetic
//! workload traces and the RLFU policy's randomized victim selection must be
//! bit-for-bit reproducible across machines and library versions, because the
//! experiment harness compares absolute counters between configurations.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny state-expansion generator, mainly used to seed
//!   other generators and for cheap hashing of page-table node addresses.
//! * [`Xoshiro256StarStar`] — the workhorse generator for workload synthesis
//!   (xoshiro256** 1.0 by Blackman & Vigna, public domain algorithm).

/// SplitMix64 generator (Steele, Lea & Flood; public-domain algorithm).
///
/// Also usable as a 64-bit mixing/hash function via [`SplitMix64::mix`].
///
/// ```
/// use morrigan_types::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds, including zero, are valid.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        Self::mix(self.state)
    }

    /// The SplitMix64 finalizer as a stateless mixing function.
    ///
    /// Used to derive deterministic "random-looking" physical frame numbers
    /// and page-table node addresses from virtual page numbers.
    #[inline]
    pub const fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna, public-domain algorithm).
///
/// All-zero state is forbidden by the algorithm; [`Xoshiro256StarStar::new`]
/// expands the seed through SplitMix64, which cannot produce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding `seed` through [`SplitMix64`].
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's widening-multiply technique with a rejection pass for
        // exact uniformity.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi (got {lo}..{hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 from the published C code.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::new(99);
        let mut b = Xoshiro256StarStar::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xoshiro256StarStar::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = Xoshiro256StarStar::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues of a small bound should appear"
        );
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Xoshiro256StarStar::new(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
    }
}
