//! Strongly-typed addresses, pages, and cache lines.
//!
//! The simulator models a standard x86-64 layout: 4 KB base pages
//! ([`PAGE_SHIFT`] = 12), 64-byte cache lines ([`LINE_SHIFT`] = 6), and
//! 8-byte page-table entries so a single cache line holds 8 contiguous PTEs
//! (the *page-table locality* that §2 of the paper exploits).
//!
//! Newtypes keep virtual and physical namespaces statically distinct
//! (C-NEWTYPE): a [`VirtPage`] can never be passed where a [`PhysPage`] is
//! expected, which rules out an entire class of simulator bugs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// log2 of the base page size (4 KB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// log2 of the cache-line size (64-byte lines).
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes.
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;
/// Size of one page-table entry in bytes (x86-64).
pub const PTE_SIZE: u64 = 8;
/// Number of PTEs that share one cache line (64 / 8 = 8).
pub const PTES_PER_LINE: u64 = LINE_SIZE / PTE_SIZE;

/// Bit position at which an address-space identifier is fused into a
/// virtual *page number*.
///
/// The multi-process model keeps the single-address-space hot path
/// intact by folding each tenant's ASID into the high bits of its VPNs:
/// `fused_vpn = (asid << ASID_SHIFT) | vpn`. Workload generators emit
/// VPNs below bit 40 (user-space canonical addresses are ≤ 47 bits, so
/// pages are ≤ 35 bits), leaving bits 40+ free to carry the ASID. ASID 0
/// is the identity fusing, which is why `cores=1, processes=1` runs are
/// bit-identical to the pre-multicore simulator.
pub const ASID_SHIFT: u32 = 40;
/// Bit position at which an ASID is fused into a full virtual *address*
/// (`ASID_SHIFT` page bits further left).
pub const ASID_ADDR_SHIFT: u32 = ASID_SHIFT + PAGE_SHIFT;

macro_rules! address_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(value: $name) -> u64 {
                value.0
            }
        }
    };
}

address_newtype! {
    /// A full 64-bit virtual address.
    VirtAddr
}

address_newtype! {
    /// A full 64-bit physical address.
    PhysAddr
}

address_newtype! {
    /// A virtual page number (virtual address >> [`PAGE_SHIFT`]).
    VirtPage
}

address_newtype! {
    /// A physical frame number (physical address >> [`PAGE_SHIFT`]).
    PhysPage
}

address_newtype! {
    /// A physical cache-line number (physical address >> [`LINE_SHIFT`]).
    CacheLine
}

impl VirtAddr {
    /// Returns the virtual page containing this address.
    ///
    /// ```
    /// use morrigan_types::addr::{VirtAddr, VirtPage};
    /// assert_eq!(VirtAddr::new(0x1234).virt_page(), VirtPage::new(1));
    /// ```
    #[inline]
    pub const fn virt_page(self) -> VirtPage {
        VirtPage(self.0 >> PAGE_SHIFT)
    }

    /// Returns the offset of this address within its page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the virtual cache-line index (address >> [`LINE_SHIFT`]).
    ///
    /// Used by the front end to detect when fetch crosses into a new
    /// instruction cache line.
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0 >> LINE_SHIFT
    }

    /// Fuses `asid` into this address's high bits (see [`ASID_SHIFT`]).
    ///
    /// ```
    /// use morrigan_types::addr::VirtAddr;
    /// let a = VirtAddr::new(0x1234).with_asid(3);
    /// assert_eq!(a.asid(), 3);
    /// assert_eq!(a.virt_page().asid(), 3);
    /// ```
    #[inline]
    pub const fn with_asid(self, asid: u16) -> VirtAddr {
        VirtAddr(self.0 | (asid as u64) << ASID_ADDR_SHIFT)
    }

    /// The ASID fused into this address (0 for untagged addresses).
    #[inline]
    pub const fn asid(self) -> u16 {
        (self.0 >> ASID_ADDR_SHIFT) as u16
    }
}

impl PhysAddr {
    /// Returns the physical frame containing this address.
    #[inline]
    pub const fn phys_page(self) -> PhysPage {
        PhysPage(self.0 >> PAGE_SHIFT)
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn cache_line(self) -> CacheLine {
        CacheLine(self.0 >> LINE_SHIFT)
    }
}

impl VirtPage {
    /// Returns the first address of this page.
    #[inline]
    pub const fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the page `delta` pages away, saturating at zero for negative
    /// results (prefetches below address zero are meaningless and the
    /// caller treats page 0 as non-faultable territory it never maps).
    ///
    /// ```
    /// use morrigan_types::addr::VirtPage;
    /// assert_eq!(VirtPage::new(10).offset(-3), VirtPage::new(7));
    /// assert_eq!(VirtPage::new(2).offset(-5), VirtPage::new(0));
    /// ```
    #[inline]
    pub fn offset(self, delta: i64) -> VirtPage {
        VirtPage(self.0.saturating_add_signed(delta))
    }

    /// Signed distance (in pages) from `other` to `self`.
    ///
    /// This is the quantity IRIP stores in its 15-bit prediction slots
    /// instead of full 36-bit VPNs (§4.1.1).
    #[inline]
    pub fn distance_from(self, other: VirtPage) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Index of this page's PTE within its (8-entry) PTE cache line.
    #[inline]
    pub const fn pte_slot_in_line(self) -> u64 {
        self.0 % PTES_PER_LINE
    }

    /// The other virtual pages whose leaf PTEs share a cache line with this
    /// page's PTE, i.e. the pages that arrive "for free" with one page-walk
    /// memory reference (§2, *page table locality*).
    ///
    /// The returned iterator yields up to 7 pages and never includes `self`.
    pub fn pte_line_neighbors(self) -> impl Iterator<Item = VirtPage> {
        let base = self.0 - self.0 % PTES_PER_LINE;
        (base..base + PTES_PER_LINE)
            .filter(move |&v| v != self.0)
            .map(VirtPage)
    }

    /// Fuses `asid` into this page number's high bits (see [`ASID_SHIFT`]).
    #[inline]
    pub const fn with_asid(self, asid: u16) -> VirtPage {
        VirtPage(self.0 | (asid as u64) << ASID_SHIFT)
    }

    /// The ASID fused into this page number (0 for untagged pages).
    #[inline]
    pub const fn asid(self) -> u16 {
        (self.0 >> ASID_SHIFT) as u16
    }
}

impl PhysPage {
    /// Returns the first address of this frame.
    #[inline]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl CacheLine {
    /// Returns the first physical address of this line.
    #[inline]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_round_trip() {
        let addr = VirtAddr::new(0x0dea_dbee_f123);
        assert_eq!(
            addr.virt_page().base_addr().raw(),
            addr.raw() & !(PAGE_SIZE - 1)
        );
        assert_eq!(addr.page_offset(), addr.raw() & 0xfff);
    }

    #[test]
    fn distance_is_signed() {
        let a = VirtPage::new(100);
        let b = VirtPage::new(117);
        assert_eq!(b.distance_from(a), 17);
        assert_eq!(a.distance_from(b), -17);
        assert_eq!(a.offset(17), b);
        assert_eq!(b.offset(-17), a);
    }

    #[test]
    fn offset_saturates_at_zero() {
        assert_eq!(VirtPage::new(3).offset(-10), VirtPage::new(0));
    }

    #[test]
    fn pte_line_neighbors_excludes_self_and_spans_one_line() {
        let page = VirtPage::new(0xa3); // slot 3 in its line
        let neighbors: Vec<_> = page.pte_line_neighbors().collect();
        assert_eq!(neighbors.len(), 7);
        assert!(!neighbors.contains(&page));
        for n in &neighbors {
            assert_eq!(n.raw() / PTES_PER_LINE, page.raw() / PTES_PER_LINE);
        }
    }

    #[test]
    fn pte_slot_matches_paper_example() {
        // §4.1.2: the PTE of 0xA7 is the last slot of a line and the PTE of
        // 0xA8 is the first slot of the next line, so fetching both takes two
        // separate walks.
        assert_eq!(VirtPage::new(0xa7).pte_slot_in_line(), 7);
        assert_eq!(VirtPage::new(0xa8).pte_slot_in_line(), 0);
    }

    #[test]
    fn asid_fusing_round_trips_and_is_identity_for_zero() {
        let addr = VirtAddr::new(0x7fff_ffff_f123);
        assert_eq!(addr.with_asid(0), addr);
        assert_eq!(addr.asid(), 0);
        let tagged = addr.with_asid(5);
        assert_eq!(tagged.asid(), 5);
        assert_eq!(tagged.page_offset(), addr.page_offset());
        assert_eq!(tagged.virt_page(), addr.virt_page().with_asid(5));
        assert_eq!(tagged.virt_page().asid(), 5);
        // Fused page numbers from distinct ASIDs never collide.
        assert_ne!(addr.virt_page().with_asid(1), addr.virt_page().with_asid(2));
    }

    #[test]
    fn debug_and_display_are_hex() {
        let page = VirtPage::new(0xff);
        assert_eq!(format!("{page}"), "0xff");
        assert_eq!(format!("{page:?}"), "VirtPage(0xff)");
        assert_eq!(format!("{page:x}"), "ff");
    }
}
