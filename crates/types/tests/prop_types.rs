//! Property-based tests for the foundation types.

use morrigan_types::rng::{SplitMix64, Xoshiro256StarStar};
use morrigan_types::{PageDistance, VirtAddr, VirtPage};
use proptest::prelude::*;

proptest! {
    /// Address → page → base address round-trips to the page-aligned base.
    #[test]
    fn page_round_trip(raw in 0u64..(1 << 48)) {
        let addr = VirtAddr::new(raw);
        let page = addr.virt_page();
        prop_assert_eq!(page.base_addr().raw(), raw & !0xfff);
        prop_assert_eq!(page.base_addr().raw() + addr.page_offset(), raw);
    }

    /// Distance is the inverse of offset (within unsigned bounds).
    #[test]
    fn distance_offset_inverse(a in 1u64..(1 << 36), d in -1000i64..1000) {
        let from = VirtPage::new(a + 2000); // keep clear of the zero floor
        let to = from.offset(d);
        prop_assert_eq!(to.distance_from(from), d);
        prop_assert_eq!(PageDistance::between(from, to).apply(from), to);
    }

    /// `fits_bits` agrees with an independent range check.
    #[test]
    fn fits_bits_matches_range(v in i64::MIN / 4..i64::MAX / 4, bits in 1u32..=62) {
        let max = (1i64 << (bits - 1)) - 1;
        let min = -(1i64 << (bits - 1));
        prop_assert_eq!(PageDistance(v).fits_bits(bits), v >= min && v <= max);
    }

    /// PTE line neighbors: 7 of them, same line group, never self.
    #[test]
    fn pte_line_neighbors_props(v in 0u64..(1 << 36)) {
        let page = VirtPage::new(v);
        let neighbors: Vec<VirtPage> = page.pte_line_neighbors().collect();
        prop_assert_eq!(neighbors.len(), 7);
        for n in &neighbors {
            prop_assert_ne!(*n, page);
            prop_assert_eq!(n.raw() / 8, v / 8, "same 8-PTE group");
        }
    }

    /// SplitMix64's mix is a bijection-ish hash: no fixed pattern collides
    /// with its neighbor (sanity, not a proof).
    #[test]
    fn splitmix_mix_separates_neighbors(x in 0u64..u64::MAX - 1) {
        prop_assert_ne!(SplitMix64::mix(x), SplitMix64::mix(x + 1));
    }

    /// `next_below` is always in range, for any seed and bound.
    #[test]
    fn next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX, n in 1usize..50) {
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..n {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// `range` respects both endpoints.
    #[test]
    fn range_respects_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let v = rng.range(lo, lo + span);
        prop_assert!(v >= lo && v < lo + span);
    }

    /// Shuffle is always a permutation.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..100) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Streams from equal seeds are equal; from different seeds, they
    /// diverge within a few draws (overwhelmingly likely).
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Xoshiro256StarStar::new(seed);
        let mut b = Xoshiro256StarStar::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
