//! One Criterion bench per paper table/figure: each sample regenerates the
//! figure's data end-to-end (workload generation, simulation, aggregation).
//!
//! The printed figure content itself comes from the `figures` binary
//! (`cargo run -p morrigan-experiments --bin figures --release`); these
//! benches track the cost of regenerating each one and double as smoke
//! tests that every experiment runs.

use criterion::{criterion_group, criterion_main, Criterion};
use morrigan_bench::bench_scale;
use morrigan_experiments as exp;
use morrigan_experiments::Runner;

macro_rules! fig_bench {
    ($fn_name:ident, $id:literal, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let scale = bench_scale();
            c.bench_function($id, |b| {
                // A fresh single-threaded Runner per sample: the benches
                // track full regeneration cost, so neither the result
                // cache nor the pool may skew the measurement.
                b.iter(|| std::hint::black_box(exp::$module::run(&Runner::new(1), &scale)))
            });
        }
    };
}

fig_bench!(fig02, "fig02_java_mpki", fig02_java_mpki);
fig_bench!(fig03, "fig03_frontend_mpki", fig03_frontend_mpki);
fig_bench!(fig04, "fig04_translation_cycles", fig04_translation_cycles);
fig_bench!(fig05, "fig05_delta_cdf", fig05_delta_cdf);
fig_bench!(fig06, "fig06_page_skew", fig06_page_skew);
fig_bench!(fig07, "fig07_successors", fig07_successors);
fig_bench!(fig08, "fig08_successor_prob", fig08_successor_prob);
fig_bench!(fig09, "fig09_dstlb_on_istlb", fig09_dstlb_on_istlb);
fig_bench!(fig10, "fig10_fnlmma_tlb", fig10_fnlmma_tlb);
fig_bench!(fig13, "fig13_coverage_budget", fig13_coverage_budget);
fig_bench!(fig14, "fig14_replacement", fig14_replacement);
fig_bench!(fig15, "fig15_iso_speedup", fig15_iso_speedup);
fig_bench!(fig16, "fig16_walk_refs", fig16_walk_refs);
fig_bench!(fig17, "fig17_mono", fig17_mono);
fig_bench!(fig18, "fig18_other_approaches", fig18_other_approaches);
fig_bench!(fig19, "fig19_icache_synergy", fig19_icache_synergy);
fig_bench!(fig20, "fig20_smt", fig20_smt);
fig_bench!(tuning, "table_irip_tuning", tuning);

fn config(c: &mut Criterion) -> &mut Criterion {
    c
}

criterion_group! {
    name = figures;
    config = {
        let mut c = Criterion::default().sample_size(10).without_plots();
        config(&mut c);
        c
    };
    targets = fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
              fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig20, tuning
}
criterion_main!(figures);
