//! Pins the committed `BENCH_simloop.json` baseline's shape and claims.
//!
//! These tests parse the checked-in document (no simulation runs), so
//! they catch a regenerated baseline that silently re-commits a bug the
//! bench gates only check at run time:
//!
//! * every figure row — including the multi-core `fig21_multicore` one —
//!   must report a nonzero `simulate_seconds` (the machine used to drop
//!   its per-core phase profiles, zeroing the row);
//! * the bench-scale sampled pass must actually deliver a real speedup
//!   (`sampled_speedup >= 1.15` — functional cache warming, the fix for
//!   the fig03 frozen-cache IPC bias, spends roughly a third of the
//!   sampled pass, so the pre-warming 2x headline no longer holds) at
//!   honest accuracy (`sampled_mpki_rel_err <= 0.01`, per-figure
//!   `sampled_ipc_rel_err <= 0.04`).

/// The committed baseline at the workspace root.
fn committed_baseline() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simloop.json");
    std::fs::read_to_string(path).expect("committed BENCH_simloop.json at the workspace root")
}

/// Extracts `"key": <number>` from `obj` (the same narrow convention as
/// simbench's own baseline parser: it reads exactly what `render` wrote).
fn field(obj: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\": ");
    let start = obj
        .find(&needle)
        .unwrap_or_else(|| panic!("field {key:?} in {obj:.120}"))
        + needle.len();
    let value = &obj[start..];
    let end = value
        .find(|c: char| c != '.' && c != '-' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(value.len());
    value[..end]
        .parse()
        .unwrap_or_else(|_| panic!("numeric {key:?}, got {:?}", &value[..end]))
}

/// The figure-row objects of the document, in order.
fn figure_rows(doc: &str) -> Vec<&str> {
    let body = &doc[doc.find("\"figures\": [").expect("figures array")..];
    let body = &body[..body
        .find("\"total\"")
        .expect("total object follows the figures")];
    let rows: Vec<&str> = body
        .split("{\"figure\": ")
        .skip(1)
        .map(|row| &row[..row.find('}').expect("row object closes")])
        .collect();
    assert!(
        rows.len() >= 20,
        "all 19 figures plus the 8-core scaling row present, got {}",
        rows.len()
    );
    rows
}

#[test]
fn committed_baseline_is_schema_v7() {
    let doc = committed_baseline();
    assert!(
        doc.contains("\"schema\": \"morrigan-bench-simloop-v7\""),
        "baseline must be the v7 schema (regenerate with `simbench --out`)"
    );
    assert!(
        doc.contains("\"sampling\": \""),
        "v7 baselines record the sampled pass's schedule"
    );
    assert!(
        doc.contains("\"figure\": \"fig21_multicore_8core\""),
        "v7 baselines carry the 8-core scaling row"
    );
    assert!(
        doc.contains("\"probes_elided\": "),
        "v7 baselines carry the page-run elision telemetry"
    );
}

#[test]
fn every_figure_row_reports_a_real_simulate_phase() {
    let doc = committed_baseline();
    let mut saw_multi_core = false;
    for row in figure_rows(&doc) {
        let cores = field(row, "cores");
        saw_multi_core |= cores > 1.0;
        let simulate = field(row, "simulate_seconds");
        assert!(
            simulate > 0.0,
            "row with cores={cores} reports simulate_seconds={simulate}: {row:.120}"
        );
        assert!(
            field(row, "sampled_simulate_seconds") > 0.0,
            "sampled pass must report a real simulate phase too: {row:.120}"
        );
    }
    assert!(
        saw_multi_core,
        "the baseline must carry a multi-core row (fig21) — the zero-seconds bug hid there"
    );
}

#[test]
fn committed_sampled_speedup_and_accuracy_hold() {
    let doc = committed_baseline();
    let total = &doc[doc.rfind("\"total\"").expect("total object")..];
    // 1.15x, not the pre-warming 2x: the sampled fast-forward now
    // functionally warms the full cache hierarchy (DESIGN.md §11), which
    // buys the per-figure IPC bound below at roughly a third of the
    // sampled pass. An accuracy-free 2x is one env switch away
    // (MORRIGAN_NO_FF_WARM=1) but is not what this baseline commits to.
    let speedup = field(total, "sampled_speedup");
    assert!(
        speedup >= 1.15,
        "bench-scale sampled simulate-phase speedup must be >= 1.15x, got {speedup:.2}x"
    );
    let mpki_err = field(total, "sampled_mpki_rel_err");
    assert!(
        mpki_err <= 0.01,
        "bench-scale sampled MPKI deviation must be <= 1%, got {mpki_err:.4}"
    );
    let ipc_err = field(total, "sampled_ipc_rel_err");
    assert!(
        ipc_err.abs() <= 0.01,
        "bench-scale sampled IPC deviation must be <= 1%, got {ipc_err:.4}"
    );
}

#[test]
fn committed_multi_core_rows_report_parallel_scaling() {
    // Every multi-core row must say how wide its epoch driver ran
    // (`machine_threads`) and what that width bought
    // (`parallel_speedup`; 0.0 = unmeasured, recorded on hosts whose
    // effective width was already 1). A baseline regenerated on a host
    // with >= 4 spare cores must demonstrate real 4-core scaling —
    // that's the headline claim of the threaded machine.
    let doc = committed_baseline();
    let mut multi_core_rows = 0;
    for row in figure_rows(&doc) {
        if field(row, "cores") <= 1.0 {
            continue;
        }
        multi_core_rows += 1;
        let width = field(row, "machine_threads");
        assert!(width >= 1.0, "machine_threads must be positive: {row:.120}");
        let speedup = field(row, "parallel_speedup");
        if width >= 4.0 {
            assert!(
                speedup >= 2.0,
                "a width-{width} epoch driver must deliver >= 2x over serial, \
                 got {speedup:.2}x: {row:.120}"
            );
        } else if width <= 1.0 {
            assert!(
                speedup == 0.0,
                "width-1 rows record the unmeasured sentinel 0.0: {row:.120}"
            );
        }
    }
    assert!(
        multi_core_rows >= 2,
        "the 4-core fig21 row and the 8-core scaling row must both be multi-core, \
         got {multi_core_rows}"
    );
}

#[test]
fn committed_per_figure_ipc_deviation_is_bounded() {
    // IPC is *extrapolated* (the fast-forward's cycles are recharged
    // from the detail windows' CPI regression), so unlike MPKI it can
    // drift per figure while the aggregate averages it away — fig03 sat
    // at 6.4 % that way. With functional warming the worst figure (the
    // shared-LLC multicore rows) measures ~2.7 %; 4 % bounds it.
    let doc = committed_baseline();
    for row in figure_rows(&doc) {
        let err = field(row, "sampled_ipc_rel_err");
        assert!(
            err.abs() <= 0.04,
            "per-figure sampled IPC deviation must be <= 4%: {row:.120}"
        );
    }
}

#[test]
fn committed_figures_all_elide_probes() {
    // The page-run index must be engaged on every figure — including
    // the SMT and multi-core rows that take the per-instruction
    // fallback paths, which elide via the same-line fast path.
    let doc = committed_baseline();
    for row in figure_rows(&doc) {
        assert!(
            field(row, "probes_elided") > 0.0,
            "every figure must elide same-page probes: {row:.120}"
        );
        assert!(
            field(row, "probes_issued") > 0.0,
            "every figure must still issue real probes: {row:.120}"
        );
    }
}

#[test]
fn committed_per_figure_mpki_deviation_is_bounded() {
    // MPKI is *measured* during fast-forward (every translation runs the
    // real MMU paths), so per-figure deviation should be essentially
    // zero; 1 % bounds the second-order timestamp effects on the
    // timing-sensitive structures (PB, walker) without flakiness.
    let doc = committed_baseline();
    for row in figure_rows(&doc) {
        let err = field(row, "sampled_mpki_rel_err");
        assert!(
            err.abs() <= 0.01,
            "per-figure sampled MPKI deviation must be <= 1%: {row:.120}"
        );
    }
}
