//! The throughput baseline: wall-clock MIPS per figure regeneration.
//!
//! Runs the same figure workloads as the criterion benches — each with a
//! fresh single-threaded [`Runner`] so neither the result cache nor the
//! worker pool skews the number — and reports simulated instructions per
//! wall-second (MIPS). Two modes:
//!
//! * `simbench [--out PATH]` — measure and write the JSON baseline
//!   (default `BENCH_simloop.json` in the current directory).
//! * `simbench --check PATH [--tolerance FRAC]` — measure and compare
//!   against a committed baseline, exiting non-zero if the aggregate or
//!   the single-core MIPS regressed by more than `FRAC` (default 0.20).
//!   CI runs this with a small `MORRIGAN_INSTR` so a hot-path
//!   regression fails the build.
//!
//! Both modes run every figure **twice**: a full-detail pass (the MIPS
//! baseline) and a SMARTS-sampled pass at the default `detail:skip`
//! schedule. The sampled pass yields the `sampled_*` fields — per-figure
//! simulate-phase wall time and iSTLB-MPKI deviation against the full
//! pass — and `--check` gates on them: sampled MPKI must stay within 1 %
//! of full (miss counters are measured, not extrapolated, so this is
//! scale-insensitive) and the sampled simulate phase must actually be
//! faster. The bench-scale speedup claim itself is pinned by the
//! committed baseline's `sampled_speedup` (see `tests/baseline.rs`).
//!
//! The v6 schema also measures the threaded multi-core machine: the
//! figure list gains an 8-core scaling row (the fig21 sweep with its
//! ceiling raised to 8), every multi-core row records its effective
//! epoch-driver width (`machine_threads`) and the simulate-phase
//! speedup of that width over a serial (width-1) reference pass
//! (`parallel_speedup`; `0.0` on hosts without spare cores, where
//! nothing was measured). `--check` gates the committed 4-core row:
//! when it was produced at width >= 4, its speedup must be >= 2x; when
//! the committed baseline was produced on a narrower host (width < 4,
//! so nothing was measured and the field reads 0.0) the gate is
//! *skipped with a logged warning* — regenerate the baseline on a
//! >= 4-CPU host to arm it.
//!
//! The v7 schema adds page-run batching telemetry: every row carries
//! `probes_issued` / `probes_elided` / `runs_consumed` — translation
//! probes the stepping loops actually made vs elided through same-page
//! run batching, and whole index runs consumed. Both modes fail if any
//! figure reports zero elided probes (the batching plumbing silently
//! disengaged), and `--check` gates each figure's `sampled_ipc_rel_err`
//! individually so one noisy figure can't hide inside the aggregate.
//!
//! Scale comes from [`bench_scale`]: the criterion profile unless
//! `MORRIGAN_INSTR`/`MORRIGAN_FULL` override it.

use std::process::ExitCode;
use std::time::Instant;

use morrigan_bench::bench_scale;
use morrigan_experiments as exp;
use morrigan_experiments::{Runner, Scale};
use morrigan_runner::json::json_f64;
use morrigan_sim::SamplingConfig;

/// One measured figure regeneration.
struct FigureRun {
    name: &'static str,
    /// Largest machine the figure steps (1 for the single-core figures;
    /// the sweep ceiling for the multicore rows). `instructions` already
    /// counts every core's retirement, so `mips` is aggregate throughput
    /// and `per_core_mips` is the per-simulated-core rate.
    cores: usize,
    /// Effective epoch-driver width of the timed pass:
    /// min(cores, host parallelism). `1` on single-core figures and on
    /// hosts without spare cores.
    machine_threads: usize,
    /// Serial-reference simulate seconds over the timed pass's — how
    /// much the threaded epoch driver actually bought. `0.0` when not
    /// measured: single-core figures, sampled passes, and hosts where
    /// the effective width is already 1 (nothing to compare).
    parallel_speedup: f64,
    instructions: u64,
    seconds: f64,
    /// Wall time the figure's simulators spent pulling instructions
    /// (`fill_block` refills), summed over its runs. With the workload
    /// cache on these refills are replay copies, so this collapses from
    /// the v2 baseline's O(runs) generation cost.
    workload_gen_seconds: f64,
    /// Wall time materializing packed traces — the O(distinct workloads)
    /// generation cost the cache amortizes across the figure's runs.
    trace_build_seconds: f64,
    /// Wall time inside `Simulator::run` minus workload generation and
    /// trace materialization — the lookup/walk/retire simulation proper.
    simulate_seconds: f64,
    /// Distinct workload traces materialized for this figure.
    workloads_materialized: u64,
    /// Replay streams served from those traces (the amortization
    /// denominator: served / materialized runs ≥ 1).
    streams_served: u64,
    /// Measurement-window instructions summed over the figure's journaled
    /// records (duplicates included — both passes journal identically, so
    /// the accuracy ratios line up). Denominator for the MPKI deviation.
    record_instructions: u64,
    /// iSTLB misses summed over the figure's journaled records.
    record_istlb_misses: u64,
    /// Cycles summed over the figure's journaled records (IPC deviation).
    record_cycles: u64,
    /// Translation probes the stepping loops actually issued, summed
    /// over the figure's simulations (warmup included).
    probes_issued: u64,
    /// Probes elided — same-line fetches and same-page run batching.
    /// Zero means the counters (and likely the batching) fell off.
    probes_elided: u64,
    /// Whole page-index runs consumed by the batched stepping path.
    /// Zero on figures that only exercise fallback paths (SMT).
    runs_consumed: u64,
}

impl FigureRun {
    fn mips(&self) -> f64 {
        self.instructions as f64 / self.seconds / 1e6
    }

    /// Per-simulated-core simulate-phase throughput:
    /// instructions / (cores × simulate-phase seconds). The v5 formula
    /// divided aggregate wall-clock MIPS by the core count, billing each
    /// core for workload generation and trace materialization that
    /// happen once per machine, not once per core.
    fn per_core_mips(&self) -> f64 {
        if self.simulate_seconds > 0.0 {
            self.instructions as f64 / (self.cores as f64 * self.simulate_seconds) / 1e6
        } else {
            0.0
        }
    }

    /// Aggregate iSTLB MPKI over the figure's journaled records.
    fn istlb_mpki(&self) -> f64 {
        self.record_istlb_misses as f64 / self.record_instructions.max(1) as f64 * 1000.0
    }

    /// Aggregate IPC over the figure's journaled records.
    fn ipc(&self) -> f64 {
        self.record_instructions as f64 / self.record_cycles.max(1) as f64
    }
}

/// Relative deviation of `sampled` from `full`, `0.0` when `full` is
/// zero (then `sampled` must be zero too for the deviation to be zero —
/// a nonzero `sampled` against a zero `full` reads as 100 %).
fn rel_err(full: f64, sampled: f64) -> f64 {
    if full == 0.0 {
        if sampled == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (sampled - full).abs() / full
    }
}

/// Aggregate MIPS over a subset of the runs (0.0 when the subset is
/// empty — the v4 totals report single- and multi-core throughput
/// separately so the regression gate can pin the single-core hot path
/// without the machine figure's contention noise).
fn subset_mips<'a>(runs: impl Iterator<Item = &'a FigureRun>) -> f64 {
    let (instructions, seconds) = runs.fold((0u64, 0f64), |(i, s), f| {
        (i + f.instructions, s + f.seconds)
    });
    if seconds > 0.0 {
        instructions as f64 / seconds / 1e6
    } else {
        0.0
    }
}

/// The epoch-driver width a `cores`-wide machine auto-sizes to on this
/// host (mirrors the machine's own auto-sizing rule).
fn effective_machine_threads(cores: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cores)
        .max(1)
}

/// One bench figure: journal label, the largest machine it steps, the
/// scale it runs at (the 8-core scaling row raises the sweep ceiling),
/// and the regeneration entry point.
struct BenchFigure {
    name: &'static str,
    cores: usize,
    scale: Scale,
    run: fn(&Runner, &Scale),
}

/// Every figure the criterion bench suite regenerates, in bench order,
/// plus the 8-core scaling row. `sampling` selects the pass: `None` runs
/// full detailed timing, `Some` runs the SMARTS-sampled schedule on
/// every spec.
fn run_figures(scale: &Scale, sampling: Option<SamplingConfig>) -> Vec<FigureRun> {
    macro_rules! figs {
        ($($name:literal => $module:ident),+ $(,)?) => {
            vec![$(($name, (|runner: &Runner, scale: &Scale| {
                std::hint::black_box(exp::$module::run(runner, scale));
            }) as fn(&Runner, &Scale))),+]
        };
    }
    let figures = figs![
        "fig02_java_mpki" => fig02_java_mpki,
        "fig03_frontend_mpki" => fig03_frontend_mpki,
        "fig04_translation_cycles" => fig04_translation_cycles,
        "fig05_delta_cdf" => fig05_delta_cdf,
        "fig06_page_skew" => fig06_page_skew,
        "fig07_successors" => fig07_successors,
        "fig08_successor_prob" => fig08_successor_prob,
        "fig09_dstlb_on_istlb" => fig09_dstlb_on_istlb,
        "fig10_fnlmma_tlb" => fig10_fnlmma_tlb,
        "fig13_coverage_budget" => fig13_coverage_budget,
        "fig14_replacement" => fig14_replacement,
        "fig15_iso_speedup" => fig15_iso_speedup,
        "fig16_walk_refs" => fig16_walk_refs,
        "fig17_mono" => fig17_mono,
        "fig18_other_approaches" => fig18_other_approaches,
        "fig19_icache_synergy" => fig19_icache_synergy,
        "fig20_smt" => fig20_smt,
        "fig21_multicore" => fig21_multicore,
        "table_irip_tuning" => tuning,
    ];
    let mut figures: Vec<BenchFigure> = figures
        .into_iter()
        .map(|(name, run)| BenchFigure {
            name,
            cores: if name == "fig21_multicore" {
                scale.cores
            } else {
                1
            },
            scale: *scale,
            run,
        })
        .collect();
    // The 8-core scaling row: the same machine sweep with the ceiling
    // raised to 8, recording how the epoch driver scales past the
    // default 4-core topology.
    let mut eight_core = *scale;
    eight_core.cores = 8;
    figures.push(BenchFigure {
        name: "fig21_multicore_8core",
        cores: 8,
        scale: eight_core,
        run: (|runner: &Runner, scale: &Scale| {
            std::hint::black_box(exp::fig21_multicore::run(runner, scale));
        }) as fn(&Runner, &Scale),
    });

    let label = if sampling.is_some() {
        "sampled"
    } else {
        "full"
    };
    let mut runs = Vec::with_capacity(figures.len());
    for BenchFigure {
        name,
        cores,
        scale,
        run,
    } in figures
    {
        let scale = &scale;
        // Fresh per figure so neither the record cache nor the workload
        // cache amortizes *across* figures; the workload cache comes
        // from the environment so `MORRIGAN_NO_WORKLOAD_CACHE=1` gives
        // an honest live-generation A/B against the same binary.
        let runner = Runner::new(1)
            .with_sampling(sampling)
            .with_workload_cache(morrigan_runner::WorkloadCache::from_env());
        let start = Instant::now();
        run(&runner, scale);
        let seconds = start.elapsed().as_secs_f64();
        let instructions = runner.instructions_simulated();
        // Each figure owns a fresh runner, so its phase totals are
        // exactly this figure's simulations.
        let phases = runner.phase_totals();
        let workload_stats = runner.workload_cache_stats();
        let (mut record_instructions, mut record_istlb_misses, mut record_cycles) = (0, 0, 0);
        for record in runner.journal_since(0) {
            record_instructions += record.metrics.instructions;
            record_istlb_misses += record.metrics.mmu.istlb_misses;
            record_cycles += record.metrics.cycles;
        }
        let elision = runner.elision_totals();
        let machine_threads = if cores > 1 {
            effective_machine_threads(cores)
        } else {
            1
        };
        // Serial-reference pass: the same figure with the epoch driver
        // pinned to one thread, so the baseline records how much the
        // threaded driver actually bought. Skipped on the sampled pass
        // and wherever the timed pass already ran at width 1 (narrow
        // host) — there is nothing to compare, and the sentinel 0.0
        // says "not measured" rather than faking a 1.0.
        let parallel_speedup = if cores > 1 && machine_threads > 1 && sampling.is_none() {
            let serial = Runner::new(1)
                .with_machine_threads(Some(1))
                .with_workload_cache(morrigan_runner::WorkloadCache::from_env());
            run(&serial, scale);
            let serial_simulate = serial.phase_totals().simulate();
            let threaded_simulate = phases.simulate();
            if threaded_simulate > 0.0 {
                serial_simulate / threaded_simulate
            } else {
                0.0
            }
        } else {
            0.0
        };
        let fig = FigureRun {
            name,
            cores,
            machine_threads,
            parallel_speedup,
            instructions,
            seconds,
            workload_gen_seconds: phases.workload_gen(),
            trace_build_seconds: phases.trace_build(),
            simulate_seconds: phases.simulate(),
            workloads_materialized: workload_stats.built + workload_stats.loaded_from_disk,
            streams_served: workload_stats.streams_served,
            record_instructions,
            record_istlb_misses,
            record_cycles,
            probes_issued: elision.probes_issued,
            probes_elided: elision.probes_elided,
            runs_consumed: elision.runs_consumed,
        };
        eprintln!(
            "[simbench] {label} {name}: {instructions} instructions in {seconds:.3} s = \
             {:.2} MIPS over {} core(s) at width {} (workload-gen {:.3} s, trace-build \
             {:.3} s over {} traces serving {} streams, simulate {:.3} s, parallel \
             speedup {:.2}, elided {}/{} probes over {} runs)",
            fig.mips(),
            fig.cores,
            fig.machine_threads,
            fig.workload_gen_seconds,
            fig.trace_build_seconds,
            fig.workloads_materialized,
            fig.streams_served,
            fig.simulate_seconds,
            fig.parallel_speedup,
            fig.probes_elided,
            fig.probes_issued + fig.probes_elided,
            fig.runs_consumed,
        );
        runs.push(fig);
    }
    runs
}

/// Renders the baseline document (the workspace deliberately carries no
/// JSON dependency; this mirrors `morrigan_runner::json`). `sampled` is
/// the SMARTS-sampled pass, aligned with `runs` by index.
fn render(scale: &Scale, runs: &[FigureRun], sampled: &[FigureRun]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"morrigan-bench-simloop-v7\",\n");
    out.push_str(&format!(
        "  \"scale\": {{\"warmup\": {}, \"measure\": {}, \"workloads\": {}, \"smt_pairs\": {}, \
         \"cores\": {}, \"tenants\": {}}},\n",
        scale.warmup, scale.measure, scale.workloads, scale.smt_pairs, scale.cores, scale.tenants
    ));
    out.push_str(&format!(
        "  \"sampling\": \"{}\",\n",
        SamplingConfig::default_schedule()
    ));
    out.push_str("  \"figures\": [\n");
    for (i, (f, s)) in runs.iter().zip(sampled).enumerate() {
        out.push_str(&format!(
            "    {{\"figure\": \"{}\", \"cores\": {}, \"machine_threads\": {}, \
             \"instructions\": {}, \"seconds\": {}, \
             \"workload_gen_seconds\": {}, \"trace_build_seconds\": {}, \
             \"simulate_seconds\": {}, \"workloads_materialized\": {}, \
             \"streams_served\": {}, \"probes_issued\": {}, \"probes_elided\": {}, \
             \"runs_consumed\": {}, \"mips\": {}, \"per_core_mips\": {}",
            f.name,
            f.cores,
            f.machine_threads,
            f.instructions,
            json_f64(f.seconds),
            json_f64(f.workload_gen_seconds),
            json_f64(f.trace_build_seconds),
            json_f64(f.simulate_seconds),
            f.workloads_materialized,
            f.streams_served,
            f.probes_issued,
            f.probes_elided,
            f.runs_consumed,
            json_f64(f.mips()),
            json_f64(f.per_core_mips()),
        ));
        if f.cores > 1 {
            out.push_str(&format!(
                ", \"parallel_speedup\": {}",
                json_f64(f.parallel_speedup)
            ));
        }
        out.push_str(&format!(
            ", \"sampled_seconds\": {}, \"sampled_simulate_seconds\": {}, \
             \"sampled_mpki_rel_err\": {}, \"sampled_ipc_rel_err\": {}}}{}\n",
            json_f64(s.seconds),
            json_f64(s.simulate_seconds),
            json_f64(rel_err(f.istlb_mpki(), s.istlb_mpki())),
            json_f64(rel_err(f.ipc(), s.ipc())),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // `--check` parses the LAST "total" object for its "mips" and
    // generation seconds — this object must stay last in the document
    // and keep those keys.
    let (instructions, seconds) = totals(runs);
    let workload_gen: f64 = runs.iter().map(|f| f.workload_gen_seconds).sum();
    let trace_build: f64 = runs.iter().map(|f| f.trace_build_seconds).sum();
    let simulate: f64 = runs.iter().map(|f| f.simulate_seconds).sum();
    let materialized: u64 = runs.iter().map(|f| f.workloads_materialized).sum();
    let served: u64 = runs.iter().map(|f| f.streams_served).sum();
    let probes_issued: u64 = runs.iter().map(|f| f.probes_issued).sum();
    let probes_elided: u64 = runs.iter().map(|f| f.probes_elided).sum();
    let runs_consumed: u64 = runs.iter().map(|f| f.runs_consumed).sum();
    let acc = Accuracy::new(runs, sampled);
    out.push_str(&format!(
        "  \"total\": {{\"instructions\": {instructions}, \"seconds\": {}, \
         \"workload_gen_seconds\": {}, \"trace_build_seconds\": {}, \
         \"simulate_seconds\": {}, \"workloads_materialized\": {materialized}, \
         \"streams_served\": {served}, \"probes_issued\": {probes_issued}, \
         \"probes_elided\": {probes_elided}, \"runs_consumed\": {runs_consumed}, \
         \"single_core_mips\": {}, \
         \"multi_core_mips\": {}, \"sampled_seconds\": {}, \
         \"sampled_simulate_seconds\": {}, \"sampled_speedup\": {}, \
         \"sampled_mpki_rel_err\": {}, \"sampled_ipc_rel_err\": {}, \"mips\": {}}}\n}}\n",
        json_f64(seconds),
        json_f64(workload_gen),
        json_f64(trace_build),
        json_f64(simulate),
        json_f64(subset_mips(runs.iter().filter(|f| f.cores == 1))),
        json_f64(subset_mips(runs.iter().filter(|f| f.cores > 1))),
        json_f64(acc.sampled_seconds),
        json_f64(acc.sampled_simulate),
        json_f64(acc.speedup()),
        json_f64(acc.mpki_rel_err),
        json_f64(acc.ipc_rel_err),
        json_f64(instructions as f64 / seconds / 1e6)
    ));
    out
}

/// The sampled pass's aggregate accuracy and speed against the full one.
struct Accuracy {
    sampled_seconds: f64,
    full_simulate: f64,
    sampled_simulate: f64,
    mpki_rel_err: f64,
    ipc_rel_err: f64,
}

impl Accuracy {
    fn new(runs: &[FigureRun], sampled: &[FigureRun]) -> Self {
        let agg = |rs: &[FigureRun]| {
            rs.iter().fold((0u64, 0u64, 0u64), |(i, m, c), f| {
                (
                    i + f.record_instructions,
                    m + f.record_istlb_misses,
                    c + f.record_cycles,
                )
            })
        };
        let (fi, fm, fc) = agg(runs);
        let (si, sm, sc) = agg(sampled);
        let mpki = |misses: u64, instr: u64| misses as f64 / instr.max(1) as f64 * 1000.0;
        let ipc = |instr: u64, cycles: u64| instr as f64 / cycles.max(1) as f64;
        Accuracy {
            sampled_seconds: sampled.iter().map(|f| f.seconds).sum(),
            full_simulate: runs.iter().map(|f| f.simulate_seconds).sum(),
            sampled_simulate: sampled.iter().map(|f| f.simulate_seconds).sum(),
            mpki_rel_err: rel_err(mpki(fm, fi), mpki(sm, si)),
            ipc_rel_err: rel_err(ipc(fi, fc), ipc(si, sc)),
        }
    }

    /// Full-pass simulate seconds over sampled-pass simulate seconds.
    fn speedup(&self) -> f64 {
        if self.sampled_simulate > 0.0 {
            self.full_simulate / self.sampled_simulate
        } else {
            0.0
        }
    }
}

fn totals(runs: &[FigureRun]) -> (u64, f64) {
    (
        runs.iter().map(|f| f.instructions).sum(),
        runs.iter().map(|f| f.seconds).sum(),
    )
}

/// Pulls one numeric field out of the baseline's `"total"` object. The
/// parser is deliberately narrow: it reads exactly what [`render`]
/// writes.
fn baseline_total_field(doc: &str, key: &str) -> Option<f64> {
    let total = &doc[doc.rfind("\"total\"")?..];
    let needle = format!("\"{key}\": ");
    let value = &total[total.find(&needle)? + needle.len()..];
    let end = value.find(|c: char| c != '.' && c != '-' && c != 'e' && !c.is_ascii_digit())?;
    value[..end].parse().ok()
}

/// Pulls one numeric field out of a named figure row of the baseline
/// (the trailing quote in the needle keeps `fig21_multicore` from
/// matching its `_8core` sibling).
fn baseline_figure_field(doc: &str, figure: &str, key: &str) -> Option<f64> {
    let row = &doc[doc.find(&format!("\"figure\": \"{figure}\","))?..];
    let row = &row[..row.find('}')?];
    let needle = format!("\"{key}\": ");
    let value = &row[row.find(&needle)? + needle.len()..];
    let end = value.find(|c: char| c != '.' && c != '-' && c != 'e' && !c.is_ascii_digit())?;
    value[..end].parse().ok()
}

/// The fraction of total wall time spent producing instructions —
/// `fill_block` generation plus trace materialization. Scale-insensitive
/// (both numerator and denominator are roughly per-instruction costs),
/// which is what lets CI check it at a reduced `MORRIGAN_INSTR` against
/// the committed bench-scale baseline. A v2 baseline has no
/// `trace_build_seconds`; it reads as zero.
fn gen_ratio(seconds: f64, workload_gen: f64, trace_build: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    (workload_gen + trace_build) / seconds
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_simloop.json".to_string();
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.20_f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => return usage("--check needs a path"),
            },
            "--tolerance" => match args.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => return usage("--tolerance needs a fraction"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let scale = bench_scale();
    eprintln!(
        "[simbench] scale: {} warmup + {} measure instructions, {} workloads, {} SMT pairs, \
         {} cores x {} tenants",
        scale.warmup, scale.measure, scale.workloads, scale.smt_pairs, scale.cores, scale.tenants
    );
    let runs = run_figures(&scale, None);
    let sampled = run_figures(&scale, Some(SamplingConfig::default_schedule()));
    let (instructions, seconds) = totals(&runs);
    let mips = instructions as f64 / seconds / 1e6;
    let single_core_mips = subset_mips(runs.iter().filter(|f| f.cores == 1));
    println!(
        "simbench: {instructions} instructions in {seconds:.3} s = {mips:.2} MIPS \
         aggregate, {single_core_mips:.2} single-core"
    );
    let acc = Accuracy::new(&runs, &sampled);
    println!(
        "simbench: sampled pass {:.3} s simulate vs {:.3} s full = {:.2}x speedup, \
         MPKI deviation {:.4}, IPC deviation {:.4}",
        acc.sampled_simulate,
        acc.full_simulate,
        acc.speedup(),
        acc.mpki_rel_err,
        acc.ipc_rel_err,
    );

    // Every row must report a real simulate phase: a figure whose
    // simulate_seconds reads 0.0 means the phase plumbing dropped its
    // profile (the multi-core machine used to), not that simulation was
    // free. Enforced in both modes so a regenerated baseline can never
    // re-commit the bug.
    let mut failed = false;
    for f in runs.iter().chain(sampled.iter()) {
        // `<=` also catches a NaN smuggled in by a broken phase profile.
        if f.simulate_seconds <= 0.0 || f.simulate_seconds.is_nan() {
            eprintln!(
                "simbench: PHASE ACCOUNTING BUG: {} ({} core(s)) reports \
                 simulate_seconds = {}",
                f.name, f.cores, f.simulate_seconds
            );
            failed = true;
        }
    }

    // Page-run batching must be visibly engaged on every figure: even
    // the fallback paths (SMT colocation, interval sampling) count
    // same-line fetches as elided probes, so a zero here means the
    // counters — and almost certainly the batching itself — silently
    // fell out of the stepping loops. Enforced in both modes so a
    // regenerated baseline can never commit the regression.
    for f in runs.iter().chain(sampled.iter()) {
        if f.probes_elided == 0 {
            eprintln!(
                "simbench: PAGE-RUN BATCHING BUG: {} ({} core(s)) reports zero \
                 elided probes over {} instructions",
                f.name, f.cores, f.instructions
            );
            failed = true;
        }
    }

    match check_path {
        None => {
            if failed {
                return ExitCode::FAILURE;
            }
            std::fs::write(&out_path, render(&scale, &runs, &sampled)).expect("write baseline");
            println!("simbench: baseline written to {out_path}");
            ExitCode::SUCCESS
        }
        Some(path) => {
            let doc = std::fs::read_to_string(&path).expect("read committed baseline");
            let committed =
                baseline_total_field(&doc, "mips").expect("baseline has a total mips field");
            let floor = committed * (1.0 - tolerance);
            println!(
                "simbench: committed baseline {committed:.2} MIPS, floor {floor:.2} \
                 (tolerance {tolerance})"
            );
            if mips < floor {
                eprintln!("simbench: THROUGHPUT REGRESSION: {mips:.2} < {floor:.2} MIPS");
                failed = true;
            }

            // The single-core hot path gets its own floor so a machine
            // figure speedup can never mask a per-core regression (and
            // vice versa). v3 baselines carry no single_core_mips; the
            // aggregate gate above covers them.
            if let Some(committed_single) = baseline_total_field(&doc, "single_core_mips") {
                let single_floor = committed_single * (1.0 - tolerance);
                println!(
                    "simbench: committed single-core {committed_single:.2} MIPS, \
                     floor {single_floor:.2}"
                );
                if single_core_mips < single_floor {
                    eprintln!(
                        "simbench: SINGLE-CORE THROUGHPUT REGRESSION: \
                         {single_core_mips:.2} < {single_floor:.2} MIPS"
                    );
                    failed = true;
                }
            }

            // Amortization gate: the share of wall time spent producing
            // instructions must stay close to the committed baseline's.
            // Losing the workload cache (back to O(runs) generation)
            // multiplies this ratio several-fold, far past the 2× + 3 pp
            // allowance; measurement noise moves it by far less.
            let committed_ratio = gen_ratio(
                baseline_total_field(&doc, "seconds").unwrap_or(0.0),
                baseline_total_field(&doc, "workload_gen_seconds").unwrap_or(0.0),
                baseline_total_field(&doc, "trace_build_seconds").unwrap_or(0.0),
            );
            let current_gen: f64 = runs
                .iter()
                .map(|f| f.workload_gen_seconds + f.trace_build_seconds)
                .sum();
            let current_ratio = gen_ratio(seconds, current_gen, 0.0);
            let ratio_ceiling = committed_ratio * 2.0 + 0.03;
            println!(
                "simbench: generation ratio {current_ratio:.4} \
                 (committed {committed_ratio:.4}, ceiling {ratio_ceiling:.4})"
            );
            if current_ratio > ratio_ceiling {
                eprintln!(
                    "simbench: WORKLOAD-GENERATION REGRESSION: ratio {current_ratio:.4} > \
                     {ratio_ceiling:.4} — is the workload cache still amortizing?"
                );
                failed = true;
            }

            // Sampled-accuracy gate: miss counters are measured on every
            // instruction in a sampled run (never extrapolated), so the
            // MPKI deviation is scale-insensitive and must stay within
            // 1 % even at CI's reduced MORRIGAN_INSTR.
            if acc.mpki_rel_err > 0.01 {
                eprintln!(
                    "simbench: SAMPLED ACCURACY REGRESSION: iSTLB MPKI deviates {:.4} \
                     (> 0.01) from the full run",
                    acc.mpki_rel_err
                );
                failed = true;
            }

            // Per-figure IPC gate: sampled IPC is extrapolated (the
            // fast-forward's cycles are recharged from the detail
            // windows' CPI regression), so unlike MPKI it CAN drift —
            // fig03 sat at a 6.4 % deviation while the aggregate
            // averaged it down to 0.6 %, because the fast-forward froze
            // the cache hierarchy and compressed the SPEC loops' reuse
            // distances. With functional cache warming in the
            // fast-forward the worst per-figure deviation measured is
            // ~2.7 % (the multicore records, whose shared-LLC epoch
            // interleaving the warm can't fully reproduce); 4 % gives
            // those headroom while still catching any one figure
            // regressing the way fig03 did (6.4 %). The regression only
            // converges over multiple detail windows, so figures whose
            // streams are too short to span a few sampling periods
            // (reduced-scale CI runs) are skipped with a note — the
            // committed baseline's bench-scale values stay pinned per
            // figure by tests/baseline.rs regardless.
            let period = SamplingConfig::default_schedule().period();
            for (f, s) in runs.iter().zip(&sampled) {
                let per_stream = f.instructions / f.streams_served.max(1);
                if per_stream < 4 * period {
                    println!(
                        "simbench: note: per-figure IPC gate skipped for {} \
                         ({per_stream} instructions/stream < 4 sampling periods)",
                        f.name
                    );
                    continue;
                }
                let err = rel_err(f.ipc(), s.ipc());
                if err > 0.04 {
                    eprintln!(
                        "simbench: SAMPLED IPC REGRESSION: {} sampled IPC deviates \
                         {err:.4} (> 0.04) from the full run",
                        f.name
                    );
                    failed = true;
                }
            }

            // Parallel-scaling gate: a committed bench-scale baseline
            // produced on a host with >= 4 spare cores must show the
            // 4-core epoch driver actually scaling (>= 2x its serial
            // reference). A baseline regenerated on a narrower host
            // records machine_threads < 4 and parallel_speedup 0.0
            // (unmeasured, not "0x") — the gate then SKIPS with a loud
            // warning instead of silently passing, so a 1-CPU runner
            // can't quietly disarm the scaling check forever. To re-arm
            // it, regenerate the baseline on a host with >= 4 available
            // CPUs: `cargo run --release -p morrigan-bench --bin
            // simbench -- --out BENCH_simloop.json` and commit the
            // result.
            let committed_width = baseline_figure_field(&doc, "fig21_multicore", "machine_threads");
            let committed_parallel =
                baseline_figure_field(&doc, "fig21_multicore", "parallel_speedup");
            if let (Some(width), Some(speedup)) = (committed_width, committed_parallel) {
                if width >= 4.0 {
                    println!(
                        "simbench: committed 4-core parallel speedup {speedup:.2}x at width \
                         {width:.0}"
                    );
                    if speedup < 2.0 {
                        eprintln!(
                            "simbench: PARALLEL SCALING REGRESSION: committed 4-core \
                             parallel_speedup {speedup:.2}x < 2x at width {width:.0}"
                        );
                        failed = true;
                    }
                } else {
                    eprintln!(
                        "simbench: WARNING: parallel-scaling gate SKIPPED — the committed \
                         baseline was generated at epoch-driver width {width:.0} (< 4), so \
                         no 4-core speedup was measured (parallel_speedup 0.0 means \
                         unmeasured). Regenerate BENCH_simloop.json on a host with >= 4 \
                         available CPUs to arm this gate."
                    );
                }
            }

            // Sampled-speed gate: the fast-forward path must actually be
            // faster than detailed stepping. The floor is deliberately
            // loose (1.05x): functional cache warming spends roughly a
            // third of the sampled pass keeping the hierarchy's
            // replacement state live across skip stretches (the price of
            // the per-figure IPC gate above), and CI checks at a reduced
            // scale where warmup transients eat most of what remains
            // (measured ~1.15x there, ~1.3x at bench scale). The
            // bench-scale speedup claim is pinned by the committed
            // baseline's sampled_speedup (see tests/baseline.rs).
            if acc.speedup() < 1.05 {
                eprintln!(
                    "simbench: SAMPLED SPEED REGRESSION: simulate-phase speedup {:.2}x < 1.05x",
                    acc.speedup()
                );
                failed = true;
            }

            if failed {
                ExitCode::FAILURE
            } else {
                println!("simbench: throughput ok");
                ExitCode::SUCCESS
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("simbench: {err}");
    eprintln!("usage: simbench [--out PATH] [--check PATH] [--tolerance FRAC]");
    ExitCode::FAILURE
}
