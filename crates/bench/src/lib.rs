//! Criterion benches live in `benches/figures.rs`; this library only hosts
//! the shared bench-scale helper.

use morrigan_experiments::Scale;

/// The scale benches run at: small enough that one figure regeneration is
/// a sensible criterion sample, large enough to exercise every code path.
/// `MORRIGAN_INSTR`/`MORRIGAN_WORKLOADS` still override.
pub fn bench_scale() -> Scale {
    let mut scale = Scale::from_env();
    if std::env::var("MORRIGAN_INSTR").is_err() && std::env::var("MORRIGAN_FULL").is_err() {
        scale.warmup = 100_000;
        scale.measure = 250_000;
        scale.workloads = 2;
        scale.smt_pairs = 1;
    }
    scale
}
