//! Diagnostic: per-record sampled-vs-full IPC deviation for fig03's
//! specs, split by suite. Run with `MORRIGAN_INSTR` to pick the scale.
//!
//! Usage: cargo run --release -p morrigan-experiments --example fig03_probe

use morrigan_experiments::common::{baseline_spec, PrefetcherKind, RunSpec, Runner, Scale};
use morrigan_sim::{SamplingConfig, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let spec_suite = morrigan_workloads::suites::spec_suite();
    let qmm_suite = scale.suite();
    let mut specs: Vec<RunSpec> = spec_suite
        .iter()
        .map(|cfg| {
            RunSpec::spec_cpu(
                cfg,
                SystemConfig::default(),
                scale.sim(),
                PrefetcherKind::None,
            )
        })
        .collect();
    specs.extend(qmm_suite.iter().map(|cfg| baseline_spec(cfg, &scale)));

    let full = Runner::new(1).run_batch(&specs);
    let sampled = Runner::new(1)
        .with_sampling(Some(SamplingConfig::default_schedule()))
        .run_batch(&specs);

    println!(
        "{:<22} {:>9} {:>9} {:>7} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "workload",
        "full_ipc",
        "samp_ipc",
        "err%",
        "f_icstall",
        "s_icstall",
        "f_l1imiss",
        "s_l1imiss",
        "f_femiss",
        "s_femiss",
        "f_tlbst",
        "s_tlbst"
    );
    for (f, s) in full.iter().zip(&sampled) {
        let fi = f.metrics.instructions as f64 / f.metrics.cycles.max(1) as f64;
        let si = s.metrics.instructions as f64 / s.metrics.cycles.max(1) as f64;
        let fe = |m: &morrigan_sim::Metrics| m.mmu.itlb_misses + m.mmu.istlb_misses;
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>7.2} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
            f.spec.workload.name(),
            fi,
            si,
            (si - fi).abs() / fi * 100.0,
            f.metrics.icache_stall_cycles,
            s.metrics.icache_stall_cycles,
            f.metrics.l1i_misses,
            s.metrics.l1i_misses,
            fe(&f.metrics),
            fe(&s.metrics),
            f.metrics.istlb_stall_cycles,
            s.metrics.istlb_stall_cycles,
        );
    }
}
