//! Fig 19 (§6.5): synergy between Morrigan and FNL+MMA.
//!
//! FNL+MMA crosses page boundaries and needs translations; Morrigan keeps
//! those translations staged in the PB, so the combination exceeds the
//! sum of its parts (the paper: +1.2 % and +7.6 % alone, +10.9 %
//! combined, with 51.7 % of page-crossing prefetches finding their
//! translation ready).

use std::fmt;

use morrigan_sim::{IcachePrefetcherKind, SystemConfig};
use morrigan_types::prefetcher::NullPrefetcher;
use morrigan_types::stats::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::common::{run_server, suite_baselines, PrefetcherKind, Scale};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig19Result {
    /// FNL+MMA alone (translation modelled), vs next-line baseline.
    pub fnlmma_speedup: f64,
    /// Morrigan alone (next-line I-cache prefetching).
    pub morrigan_speedup: f64,
    /// Morrigan + FNL+MMA.
    pub combined_speedup: f64,
    /// Fraction of FNL+MMA's page-crossing prefetches whose translation
    /// was ready (TLB or PB) in the combined configuration.
    pub crossing_translation_ready: f64,
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Fig19Result {
    let baselines = suite_baselines(scale);

    let mut fnl_system = SystemConfig::default();
    fnl_system.icache_prefetcher = IcachePrefetcherKind::FnlMma {
        translation_cost: true,
    };

    let mut fnl = Vec::new();
    let mut morrigan = Vec::new();
    let mut combined = Vec::new();
    let mut ready = Vec::new();
    for (cfg, base) in &baselines {
        let m = run_server(cfg, fnl_system, scale.sim(), Box::new(NullPrefetcher));
        fnl.push(m.speedup_over(base));

        let m = run_server(
            cfg,
            SystemConfig::default(),
            scale.sim(),
            PrefetcherKind::Morrigan.build(),
        );
        morrigan.push(m.speedup_over(base));

        let m = run_server(
            cfg,
            fnl_system,
            scale.sim(),
            PrefetcherKind::Morrigan.build(),
        );
        combined.push(m.speedup_over(base));
        let crossings = m.iprefetch_translation_ready + m.iprefetch_translation_walks;
        ready.push(m.iprefetch_translation_ready as f64 / crossings.max(1) as f64);
    }

    Fig19Result {
        fnlmma_speedup: geometric_mean(&fnl),
        morrigan_speedup: geometric_mean(&morrigan),
        combined_speedup: geometric_mean(&combined),
        crossing_translation_ready: mean(&ready),
    }
}

impl fmt::Display for Fig19Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 19: synergy with I-cache prefetching")?;
        writeln!(
            f,
            "fnl+mma            {:+.2}%",
            (self.fnlmma_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan           {:+.2}%",
            (self.morrigan_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan+fnl+mma   {:+.2}%",
            (self.combined_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "page-crossing prefetches with ready translation: {:.1}%",
            self.crossing_translation_ready * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn combination_beats_each_alone() {
        let r = run(&Scale::test_long());
        assert!(r.combined_speedup >= r.morrigan_speedup - 0.005, "{r:?}");
        assert!(r.combined_speedup >= r.fnlmma_speedup - 0.005, "{r:?}");
        assert!(
            r.crossing_translation_ready > 0.2,
            "Morrigan should have translations staged: {r:?}"
        );
    }
}
