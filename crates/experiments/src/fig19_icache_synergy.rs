//! Fig 19 (§6.5): synergy between Morrigan and FNL+MMA.
//!
//! FNL+MMA crosses page boundaries and needs translations; Morrigan keeps
//! those translations staged in the PB, so the combination exceeds the
//! sum of its parts (the paper: +1.2 % and +7.6 % alone, +10.9 %
//! combined, with 51.7 % of page-crossing prefetches finding their
//! translation ready).

use std::fmt;

use morrigan_sim::{IcachePrefetcherKind, SystemConfig};
use morrigan_types::stats::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::common::{baseline_spec, PrefetcherKind, RunSpec, Runner, Scale};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig19Result {
    /// FNL+MMA alone (translation modelled), vs next-line baseline.
    pub fnlmma_speedup: f64,
    /// Morrigan alone (next-line I-cache prefetching).
    pub morrigan_speedup: f64,
    /// Morrigan + FNL+MMA.
    pub combined_speedup: f64,
    /// Fraction of FNL+MMA's page-crossing prefetches whose translation
    /// was ready (TLB or PB) in the combined configuration.
    pub crossing_translation_ready: f64,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig19Result {
    let suite = scale.suite();
    let n = suite.len();

    let fnl_system = SystemConfig {
        icache_prefetcher: IcachePrefetcherKind::FnlMma {
            translation_cost: true,
        },
        ..SystemConfig::default()
    };

    // One batch: baselines, FNL+MMA alone, Morrigan alone, combined.
    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    let variants: [(SystemConfig, PrefetcherKind); 3] = [
        (fnl_system, PrefetcherKind::None),
        (SystemConfig::default(), PrefetcherKind::Morrigan),
        (fnl_system, PrefetcherKind::Morrigan),
    ];
    for (system, kind) in variants {
        specs.extend(
            suite
                .iter()
                .map(|cfg| RunSpec::server(cfg, system, scale.sim(), kind)),
        );
    }
    let records = runner.run_batch(&specs);
    let (baselines, rest) = records.split_at(n);
    let (fnl_records, rest) = rest.split_at(n);
    let (morrigan_records, combined_records) = rest.split_at(n);

    let geomean_vs_baseline = |chunk: &[std::sync::Arc<crate::common::RunRecord>]| {
        let speedups: Vec<f64> = chunk
            .iter()
            .zip(baselines)
            .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
            .collect();
        geometric_mean(&speedups)
    };

    let ready: Vec<f64> = combined_records
        .iter()
        .map(|record| {
            let m = &record.metrics;
            let crossings = m.iprefetch_translation_ready + m.iprefetch_translation_walks;
            m.iprefetch_translation_ready as f64 / crossings.max(1) as f64
        })
        .collect();

    Fig19Result {
        fnlmma_speedup: geomean_vs_baseline(fnl_records),
        morrigan_speedup: geomean_vs_baseline(morrigan_records),
        combined_speedup: geomean_vs_baseline(combined_records),
        crossing_translation_ready: mean(&ready),
    }
}

impl fmt::Display for Fig19Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 19: synergy with I-cache prefetching")?;
        writeln!(
            f,
            "fnl+mma            {:+.2}%",
            (self.fnlmma_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan           {:+.2}%",
            (self.morrigan_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan+fnl+mma   {:+.2}%",
            (self.combined_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "page-crossing prefetches with ready translation: {:.1}%",
            self.crossing_translation_ready * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn combination_beats_each_alone() {
        let r = run(&Runner::new(4), &Scale::test_long());
        assert!(r.combined_speedup >= r.morrigan_speedup - 0.005, "{r:?}");
        assert!(r.combined_speedup >= r.fnlmma_speedup - 0.005, "{r:?}");
        assert!(
            r.crossing_translation_ready > 0.2,
            "Morrigan should have translations staged: {r:?}"
        );
    }
}
