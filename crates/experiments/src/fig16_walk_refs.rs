//! Fig 16 (§6.2): page-walk memory references, normalized to the
//! baseline's demand references.
//!
//! Two claims: (i) Morrigan removes the majority of *demand* page-walk
//! memory references for instructions (the paper: −69 %), paying for it
//! with background *prefetch* walk references (+117 %); (ii) the prior
//! dSTLB prefetchers barely move either number. A second panel reports
//! where Morrigan's prefetch-walk references are served (L1/L2/LLC/DRAM).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::{baseline_spec, server_spec, PrefetcherKind, RunSpec, Runner, Scale};

/// One prefetcher's normalized walk-reference counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkRefRow {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Demand instruction walk references / baseline demand references.
    pub demand_normalized: f64,
    /// Prefetch walk references / baseline demand references.
    pub prefetch_normalized: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Result {
    /// Rows per prefetcher.
    pub rows: Vec<WalkRefRow>,
    /// Fraction of Morrigan's walk references served by [L1, L2, LLC,
    /// DRAM] (the paper: 20/25/45/10 %).
    pub morrigan_served_by: [f64; 4],
}

impl Fig16Result {
    /// The row named `name`, if present.
    pub fn row(&self, name: &str) -> Option<&WalkRefRow> {
        self.rows.iter().find(|r| r.prefetcher == name)
    }
}

/// The prefetchers compared, in figure order.
const KINDS: [PrefetcherKind; 5] = [
    PrefetcherKind::Sp,
    PrefetcherKind::AspIso,
    PrefetcherKind::DpIso,
    PrefetcherKind::MpIso,
    PrefetcherKind::Morrigan,
];

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig16Result {
    let suite = scale.suite();
    let n = suite.len();

    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    for kind in KINDS {
        specs.extend(suite.iter().map(|cfg| server_spec(cfg, scale, kind)));
    }
    let records = runner.run_batch(&specs);
    let base_demand: u64 = records[..n]
        .iter()
        .map(|record| record.metrics.demand_instr_walk_refs())
        .sum();

    let mut rows = Vec::new();
    let mut morrigan_levels = [0u64; 4];
    for (k, kind) in KINDS.iter().enumerate() {
        let chunk = &records[n * (k + 1)..n * (k + 2)];
        let mut demand = 0u64;
        let mut prefetch = 0u64;
        for record in chunk {
            demand += record.metrics.demand_instr_walk_refs();
            prefetch += record.metrics.prefetch_walk_refs();
            if *kind == PrefetcherKind::Morrigan {
                for (level, refs) in morrigan_levels
                    .iter_mut()
                    .zip(record.metrics.walk_refs_by_level)
                {
                    *level += refs;
                }
            }
        }
        rows.push(WalkRefRow {
            prefetcher: kind.name().to_string(),
            demand_normalized: demand as f64 / base_demand.max(1) as f64,
            prefetch_normalized: prefetch as f64 / base_demand.max(1) as f64,
        });
    }

    let total: u64 = morrigan_levels.iter().sum();
    let served = morrigan_levels.map(|v| v as f64 / total.max(1) as f64);
    Fig16Result {
        rows,
        morrigan_served_by: served,
    }
}

impl fmt::Display for Fig16Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 16: normalized page-walk memory references")?;
        writeln!(
            f,
            "{:<10} {:>10} {:>10}",
            "prefetcher", "demand", "prefetch"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>9.0}% {:>9.0}%",
                r.prefetcher,
                r.demand_normalized * 100.0,
                r.prefetch_normalized * 100.0
            )?;
        }
        let s = self.morrigan_served_by;
        writeln!(
            f,
            "morrigan walk refs served by: L1 {:.0}%  L2 {:.0}%  LLC {:.0}%  DRAM {:.0}%",
            s[0] * 100.0,
            s[1] * 100.0,
            s[2] * 100.0,
            s[3] * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn morrigan_trades_demand_refs_for_prefetch_refs() {
        let r = run(&Runner::new(4), &Scale::test_long());
        let morrigan = r.row("morrigan").expect("morrigan row");
        // Morrigan removes a large share of demand references...
        assert!(
            morrigan.demand_normalized < 0.85,
            "demand refs must drop substantially: {morrigan:?}"
        );
        // ...while issuing substantial background prefetch references.
        assert!(morrigan.prefetch_normalized > 0.3, "{morrigan:?}");
        // ASP barely moves demand references (PC does not correlate with
        // the instruction miss stream). DP retains some residual
        // effectiveness on this synthetic substrate (see EXPERIMENTS.md),
        // but must still trail Morrigan's reduction clearly.
        let asp = r.row("asp-iso").expect("asp row");
        assert!(asp.demand_normalized > 0.9, "{asp:?} should stay near 100%");
        let dp = r.row("dp-iso").expect("dp row");
        assert!(
            dp.demand_normalized > morrigan.demand_normalized + 0.05,
            "{dp:?}"
        );
        // The served-by fractions form a distribution.
        let total: f64 = r.morrigan_served_by.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{:?}", r.morrigan_served_by);
    }
}
