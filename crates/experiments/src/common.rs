//! Shared infrastructure for the figure runners: run-length scaling, the
//! prefetcher factory, and simulation helpers.

use morrigan::{Morrigan, MorriganConfig};
use morrigan_baselines::{
    ArbitraryStridePrefetcher, AspConfig, DistancePrefetcher, DpConfig, MarkovPrefetcher,
    MorriganMono, MpConfig, SequentialPrefetcher, UnboundedMarkov,
};
use morrigan_sim::{Metrics, SimConfig, Simulator, SystemConfig};
use morrigan_types::prefetcher::NullPrefetcher;
use morrigan_types::TlbPrefetcher;
use morrigan_workloads::{ServerWorkload, ServerWorkloadConfig};
use serde::{Deserialize, Serialize};

/// Morrigan's prediction-state budget in bits (§6.1.3's 3.76 KB point),
/// used to size the ISO-storage baselines of Fig 15.
pub fn morrigan_budget_bits() -> u64 {
    morrigan::IripConfig::default().storage_bits()
}

/// How much to simulate. See the crate docs for the environment knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Warmup instructions per run.
    pub warmup: u64,
    /// Measured instructions per run.
    pub measure: u64,
    /// Number of QMM-like workloads (≤ 45).
    pub workloads: usize,
    /// Number of SMT pairs for Fig 20.
    pub smt_pairs: usize,
}

impl Scale {
    /// The default profile: fast but shape-faithful.
    pub fn quick() -> Self {
        Self {
            warmup: 1_000_000,
            measure: 3_000_000,
            workloads: 10,
            smt_pairs: 5,
        }
    }

    /// The paper's full profile: 50 M + 100 M × 45 workloads, 50 pairs.
    pub fn paper() -> Self {
        Self {
            warmup: 50_000_000,
            measure: 100_000_000,
            workloads: 45,
            smt_pairs: 50,
        }
    }

    /// A tiny profile for unit tests.
    pub fn test() -> Self {
        Self {
            warmup: 150_000,
            measure: 400_000,
            workloads: 2,
            smt_pairs: 1,
        }
    }

    /// A longer test profile for assertions that need the prediction
    /// tables trained (speedup orderings, budget sweeps). Tests using it
    /// are `#[ignore]`d in debug builds; run them with
    /// `cargo test --release`.
    pub fn test_long() -> Self {
        Self {
            warmup: 1_000_000,
            measure: 4_000_000,
            workloads: 3,
            smt_pairs: 1,
        }
    }

    /// Reads the profile from the environment: `MORRIGAN_FULL=1` selects
    /// [`Scale::paper`]; `MORRIGAN_INSTR` (measured instructions) and
    /// `MORRIGAN_WORKLOADS` override individual fields.
    pub fn from_env() -> Self {
        let mut scale = if std::env::var("MORRIGAN_FULL").is_ok_and(|v| v == "1") {
            Self::paper()
        } else {
            Self::quick()
        };
        if let Ok(n) = std::env::var("MORRIGAN_INSTR") {
            if let Ok(n) = n.parse::<u64>() {
                scale.measure = n.max(1);
                scale.warmup = (n / 3).max(1);
            }
        }
        if let Ok(n) = std::env::var("MORRIGAN_WORKLOADS") {
            if let Ok(n) = n.parse::<usize>() {
                scale.workloads = n.clamp(1, 45);
            }
        }
        scale
    }

    /// The corresponding simulator run configuration.
    pub fn sim(&self) -> SimConfig {
        SimConfig {
            warmup_instructions: self.warmup,
            measure_instructions: self.measure,
        }
    }

    /// The QMM-like suite at this scale.
    pub fn suite(&self) -> Vec<ServerWorkloadConfig> {
        morrigan_workloads::suites::qmm_suite_subset(self.workloads)
    }
}

/// Every STLB prefetcher the experiments instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching (the baseline).
    None,
    /// Sequential prefetcher, original configuration.
    Sp,
    /// Arbitrary-stride prefetcher, original configuration.
    Asp,
    /// Distance prefetcher, original configuration.
    Dp,
    /// Markov prefetcher, original configuration (128 × 2, LRU).
    Mp,
    /// ASP sized to Morrigan's 3.76 KB budget (Fig 15).
    AspIso,
    /// DP sized to Morrigan's budget.
    DpIso,
    /// MP sized to Morrigan's budget.
    MpIso,
    /// Idealized unbounded MP, two successors per entry (§3.4).
    MpUnbounded2,
    /// Idealized unbounded MP, unlimited successors (§3.4).
    MpUnboundedInf,
    /// Morrigan at the paper's default configuration.
    Morrigan,
    /// Morrigan-mono (§6.3).
    MorriganMono,
    /// Morrigan with doubled tables for SMT (§6.6).
    MorriganSmt,
}

impl PrefetcherKind {
    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "baseline",
            PrefetcherKind::Sp => "sp",
            PrefetcherKind::Asp => "asp",
            PrefetcherKind::Dp => "dp",
            PrefetcherKind::Mp => "mp",
            PrefetcherKind::AspIso => "asp-iso",
            PrefetcherKind::DpIso => "dp-iso",
            PrefetcherKind::MpIso => "mp-iso",
            PrefetcherKind::MpUnbounded2 => "mp-unbounded-2",
            PrefetcherKind::MpUnboundedInf => "mp-unbounded-inf",
            PrefetcherKind::Morrigan => "morrigan",
            PrefetcherKind::MorriganMono => "morrigan-mono",
            PrefetcherKind::MorriganSmt => "morrigan-smt",
        }
    }

    /// Instantiates the prefetcher.
    pub fn build(self) -> Box<dyn TlbPrefetcher> {
        let budget = morrigan_budget_bits();
        match self {
            PrefetcherKind::None => Box::new(NullPrefetcher),
            PrefetcherKind::Sp => Box::new(SequentialPrefetcher::new()),
            PrefetcherKind::Asp => Box::new(ArbitraryStridePrefetcher::new(AspConfig::original())),
            PrefetcherKind::Dp => Box::new(DistancePrefetcher::new(DpConfig::original())),
            PrefetcherKind::Mp => Box::new(MarkovPrefetcher::new(MpConfig::original())),
            PrefetcherKind::AspIso => Box::new(ArbitraryStridePrefetcher::new(
                AspConfig::sized_to_bits(budget),
            )),
            PrefetcherKind::DpIso => {
                Box::new(DistancePrefetcher::new(DpConfig::sized_to_bits(budget)))
            }
            PrefetcherKind::MpIso => {
                Box::new(MarkovPrefetcher::new(MpConfig::sized_to_bits(budget)))
            }
            PrefetcherKind::MpUnbounded2 => Box::new(UnboundedMarkov::two_successors()),
            PrefetcherKind::MpUnboundedInf => Box::new(UnboundedMarkov::infinite_successors()),
            PrefetcherKind::Morrigan => Box::new(Morrigan::new(MorriganConfig::default())),
            PrefetcherKind::MorriganMono => Box::new(MorriganMono::new()),
            PrefetcherKind::MorriganSmt => Box::new(Morrigan::new(MorriganConfig::smt())),
        }
    }
}

/// Runs one server workload with the given system + prefetcher.
pub fn run_server(
    cfg: &ServerWorkloadConfig,
    system: SystemConfig,
    sim: SimConfig,
    prefetcher: Box<dyn TlbPrefetcher>,
) -> Metrics {
    let mut simulator = Simulator::new(
        system,
        Box::new(ServerWorkload::new(cfg.clone())),
        prefetcher,
    );
    simulator.run(sim)
}

/// Runs a workload and returns the finished simulator for structure
/// inspection (miss-stream stats, PSC rates, ...).
pub fn run_server_sim(
    cfg: &ServerWorkloadConfig,
    system: SystemConfig,
    sim: SimConfig,
    prefetcher: Box<dyn TlbPrefetcher>,
) -> (Simulator, Metrics) {
    let mut simulator = Simulator::new(
        system,
        Box::new(ServerWorkload::new(cfg.clone())),
        prefetcher,
    );
    let metrics = simulator.run(sim);
    (simulator, metrics)
}

/// Per-workload baseline metrics for the suite (no STLB prefetching),
/// shared by several figures.
pub fn suite_baselines(scale: &Scale) -> Vec<(ServerWorkloadConfig, Metrics)> {
    scale
        .suite()
        .into_iter()
        .map(|cfg| {
            let m = run_server(
                &cfg,
                SystemConfig::default(),
                scale.sim(),
                Box::new(NullPrefetcher),
            );
            (cfg, m)
        })
        .collect()
}

/// Renders a two-column table of `(label, value)` rows.
pub fn render_table(title: &str, header: (&str, &str), rows: &[(String, String)]) -> String {
    let mut width = header.0.len();
    for (label, _) in rows {
        width = width.max(label.len());
    }
    let mut out = format!("{title}\n{:<width$}  {}\n", header.0, header.1);
    for (label, value) in rows {
        out.push_str(&format!("{label:<width$}  {value}\n"));
    }
    out
}

/// Runs the suite with miss-stream collection enabled and returns each
/// workload's [`MissStreamStats`](morrigan_vm::MissStreamStats) (used by
/// the Fig 5–8 characterization).
pub fn suite_miss_streams(scale: &Scale) -> Vec<(String, morrigan_vm::MissStreamStats)> {
    let mut system = SystemConfig::default();
    system.mmu.collect_stream_stats = true;
    scale
        .suite()
        .iter()
        .map(|cfg| {
            let (sim, _) = run_server_sim(cfg, system, scale.sim(), Box::new(NullPrefetcher));
            (cfg.name.clone(), sim.mmu().miss_stream.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_profiles() {
        assert_eq!(Scale::paper().measure, 100_000_000);
        assert_eq!(Scale::paper().workloads, 45);
        assert!(Scale::quick().measure < Scale::paper().measure);
        let s = Scale::test();
        assert!(s.workloads >= 1);
        assert_eq!(s.sim().measure_instructions, s.measure);
    }

    #[test]
    fn every_kind_builds() {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::Sp,
            PrefetcherKind::Asp,
            PrefetcherKind::Dp,
            PrefetcherKind::Mp,
            PrefetcherKind::AspIso,
            PrefetcherKind::DpIso,
            PrefetcherKind::MpIso,
            PrefetcherKind::MpUnbounded2,
            PrefetcherKind::MpUnboundedInf,
            PrefetcherKind::Morrigan,
            PrefetcherKind::MorriganMono,
            PrefetcherKind::MorriganSmt,
        ] {
            let p = kind.build();
            assert!(!kind.name().is_empty());
            let _ = p.storage_bits();
        }
    }

    #[test]
    fn iso_variants_respect_budget() {
        let budget = morrigan_budget_bits();
        for kind in [
            PrefetcherKind::AspIso,
            PrefetcherKind::DpIso,
            PrefetcherKind::MpIso,
        ] {
            let p = kind.build();
            assert!(
                p.storage_bits() <= budget,
                "{} exceeds the ISO budget: {} > {budget}",
                kind.name(),
                p.storage_bits()
            );
        }
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            "T",
            ("name", "value"),
            &[("a".into(), "1".into()), ("longer".into(), "2".into())],
        );
        assert!(t.contains("longer  2"));
        assert!(t.starts_with("T\n"));
    }
}
