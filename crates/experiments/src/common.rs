//! Shared infrastructure for the figure runners: run-length scaling,
//! spec builders for the shapes every figure declares, and table
//! rendering.
//!
//! Every figure module has the same contract: build a batch of
//! [`RunSpec`]s, hand it to the shared [`Runner`], and fold the returned
//! [`RunRecord`]s into its result struct. The spec builders here are the
//! reason figures share cache entries — two figures that need the same
//! baseline produce byte-identical specs and the runner simulates them
//! once.

use morrigan_sim::{SimConfig, SystemConfig};
use morrigan_workloads::ServerWorkloadConfig;
use serde::{Deserialize, Serialize};

pub use morrigan_runner::{
    morrigan_budget_bits, PrefetcherKind, PrefetcherSpec, RunRecord, RunSpec, Runner, WorkloadSpec,
};

/// How much to simulate. See the crate docs for the environment knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Warmup instructions per run.
    pub warmup: u64,
    /// Measured instructions per run.
    pub measure: u64,
    /// Number of QMM-like workloads (≤ 45).
    pub workloads: usize,
    /// Number of SMT pairs for Fig 20.
    pub smt_pairs: usize,
    /// Largest core count the Fig 21 machine sweep reaches (the sweep is
    /// the powers of two up to this; `--cores` / `MORRIGAN_CORES`).
    pub cores: usize,
    /// Tenants per core in Fig 21's multi-tenant rows (`--tenants` /
    /// `MORRIGAN_TENANTS`).
    pub tenants: usize,
}

impl Scale {
    /// The default profile: fast but shape-faithful.
    pub fn quick() -> Self {
        Self {
            warmup: 1_000_000,
            measure: 3_000_000,
            workloads: 10,
            smt_pairs: 5,
            cores: 4,
            tenants: 2,
        }
    }

    /// The paper's full profile: 50 M + 100 M × 45 workloads, 50 pairs.
    pub fn paper() -> Self {
        Self {
            warmup: 50_000_000,
            measure: 100_000_000,
            workloads: 45,
            smt_pairs: 50,
            cores: 8,
            tenants: 3,
        }
    }

    /// A tiny profile for unit tests.
    pub fn test() -> Self {
        Self {
            warmup: 150_000,
            measure: 400_000,
            workloads: 2,
            smt_pairs: 1,
            cores: 2,
            tenants: 2,
        }
    }

    /// A longer test profile for assertions that need the prediction
    /// tables trained (speedup orderings, budget sweeps). Tests using it
    /// are `#[ignore]`d in debug builds; run them with
    /// `cargo test --release`.
    pub fn test_long() -> Self {
        Self {
            warmup: 1_000_000,
            measure: 4_000_000,
            workloads: 3,
            smt_pairs: 1,
            cores: 2,
            tenants: 2,
        }
    }

    /// Reads the profile from the environment: `MORRIGAN_FULL=1` selects
    /// [`Scale::paper`]; `MORRIGAN_INSTR` (measured instructions) and
    /// `MORRIGAN_WORKLOADS` override individual fields.
    pub fn from_env() -> Self {
        let mut scale = if std::env::var("MORRIGAN_FULL").is_ok_and(|v| v == "1") {
            Self::paper()
        } else {
            Self::quick()
        };
        if let Ok(n) = std::env::var("MORRIGAN_INSTR") {
            if let Ok(n) = n.parse::<u64>() {
                scale.measure = n.max(1);
                scale.warmup = (n / 3).max(1);
            }
        }
        if let Ok(n) = std::env::var("MORRIGAN_WORKLOADS") {
            if let Ok(n) = n.parse::<usize>() {
                scale.workloads = n.clamp(1, 45);
            }
        }
        if let Ok(n) = std::env::var("MORRIGAN_CORES") {
            if let Ok(n) = n.parse::<usize>() {
                if n.is_power_of_two() && n <= 64 {
                    scale.cores = n;
                }
            }
        }
        if let Ok(n) = std::env::var("MORRIGAN_TENANTS") {
            if let Ok(n) = n.parse::<usize>() {
                scale.tenants = n.clamp(1, 8);
            }
        }
        scale
    }

    /// The corresponding simulator run configuration.
    pub fn sim(&self) -> SimConfig {
        SimConfig {
            warmup_instructions: self.warmup,
            measure_instructions: self.measure,
        }
    }

    /// The QMM-like suite at this scale.
    pub fn suite(&self) -> Vec<ServerWorkloadConfig> {
        morrigan_workloads::suites::qmm_suite_subset(self.workloads)
    }
}

/// A server-workload spec on the default system — the shape most
/// figures build batches from.
pub fn server_spec(
    cfg: &ServerWorkloadConfig,
    scale: &Scale,
    prefetcher: impl Into<PrefetcherSpec>,
) -> RunSpec {
    RunSpec::server(cfg, SystemConfig::default(), scale.sim(), prefetcher)
}

/// The canonical no-prefetch baseline spec for a workload.
///
/// Every figure that normalizes against the baseline calls this, so the
/// specs are identical across figures and the runner's cache collapses
/// them into one simulation per workload.
pub fn baseline_spec(cfg: &ServerWorkloadConfig, scale: &Scale) -> RunSpec {
    server_spec(cfg, scale, PrefetcherKind::None)
}

/// The miss-stream characterization spec for a workload: no prefetching,
/// `collect_stream_stats` on. Shared by Figures 5–8, which therefore
/// cost one simulation per workload between the four of them.
pub fn miss_stream_spec(cfg: &ServerWorkloadConfig, scale: &Scale) -> RunSpec {
    let mut system = SystemConfig::default();
    system.mmu.collect_stream_stats = true;
    RunSpec::server(cfg, system, scale.sim(), PrefetcherKind::None)
}

/// Per-workload iSTLB miss streams for the suite (no prefetching,
/// collection enabled), shared by the Fig 5–8 characterization: the four
/// figures declare identical specs, so the suite is simulated once for
/// all of them.
pub fn suite_miss_streams(
    runner: &Runner,
    scale: &Scale,
) -> Vec<(String, morrigan_vm::MissStreamStats)> {
    let suite = scale.suite();
    let specs: Vec<RunSpec> = suite
        .iter()
        .map(|cfg| miss_stream_spec(cfg, scale))
        .collect();
    runner
        .run_batch(&specs)
        .iter()
        .zip(&suite)
        .map(|(record, cfg)| {
            let stream = record
                .miss_stream
                .clone()
                .expect("miss_stream_spec sets collect_stream_stats");
            (cfg.name.clone(), stream)
        })
        .collect()
}

/// Renders a two-column table of `(label, value)` rows.
pub fn render_table(title: &str, header: (&str, &str), rows: &[(String, String)]) -> String {
    let mut width = header.0.len();
    for (label, _) in rows {
        width = width.max(label.len());
    }
    let mut out = format!("{title}\n{:<width$}  {}\n", header.0, header.1);
    for (label, value) in rows {
        out.push_str(&format!("{label:<width$}  {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_profiles() {
        assert_eq!(Scale::paper().measure, 100_000_000);
        assert_eq!(Scale::paper().workloads, 45);
        assert!(Scale::quick().measure < Scale::paper().measure);
        let s = Scale::test();
        assert!(s.workloads >= 1);
        assert_eq!(s.sim().measure_instructions, s.measure);
    }

    #[test]
    fn shared_specs_are_identical_across_call_sites() {
        let scale = Scale::test();
        let cfg = &scale.suite()[0];
        assert_eq!(baseline_spec(cfg, &scale), baseline_spec(cfg, &scale));
        assert_eq!(
            baseline_spec(cfg, &scale).content_key(),
            server_spec(cfg, &scale, PrefetcherKind::None).content_key()
        );
        assert_ne!(
            baseline_spec(cfg, &scale).content_key(),
            miss_stream_spec(cfg, &scale).content_key(),
            "stream-collection runs are distinct jobs"
        );
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            "T",
            ("name", "value"),
            &[("a".into(), "1".into()), ("longer".into(), "2".into())],
        );
        assert!(t.contains("longer  2"));
        assert!(t.starts_with("T\n"));
    }
}
