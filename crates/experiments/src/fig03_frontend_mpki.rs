//! Fig 3: mean L1I / I-TLB / iSTLB MPKI, SPEC-like vs QMM-like suites.
//!
//! The claim: QMM server workloads suffer roughly an order of magnitude
//! more instruction misses in all three front-end structures than SPEC CPU
//! workloads, which is why the paper's evaluation excludes SPEC.

use std::fmt;

use morrigan_sim::SystemConfig;
use morrigan_types::stats::mean;
use serde::{Deserialize, Serialize};

use crate::common::{baseline_spec, render_table, PrefetcherKind, RunSpec, Runner, Scale};

/// Mean front-end MPKI rates of one suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteMpki {
    /// Mean demand L1I misses per kilo-instruction.
    pub l1i: f64,
    /// Mean I-TLB MPKI.
    pub itlb: f64,
    /// Mean iSTLB MPKI.
    pub istlb: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig03Result {
    /// SPEC-CPU-like suite means.
    pub spec: SuiteMpki,
    /// QMM-like suite means.
    pub qmm: SuiteMpki,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig03Result {
    let spec_suite = morrigan_workloads::suites::spec_suite();
    let qmm_suite = scale.suite();
    let mut specs: Vec<RunSpec> = spec_suite
        .iter()
        .map(|cfg| {
            RunSpec::spec_cpu(
                cfg,
                SystemConfig::default(),
                scale.sim(),
                PrefetcherKind::None,
            )
        })
        .collect();
    specs.extend(qmm_suite.iter().map(|cfg| baseline_spec(cfg, scale)));
    let records = runner.run_batch(&specs);
    let (spec_records, qmm_records) = records.split_at(spec_suite.len());

    let suite_mpki = |records: &[std::sync::Arc<crate::common::RunRecord>]| SuiteMpki {
        l1i: mean(
            &records
                .iter()
                .map(|r| r.metrics.l1i_mpki())
                .collect::<Vec<_>>(),
        ),
        itlb: mean(
            &records
                .iter()
                .map(|r| r.metrics.itlb_mpki())
                .collect::<Vec<_>>(),
        ),
        istlb: mean(
            &records
                .iter()
                .map(|r| r.metrics.istlb_mpki())
                .collect::<Vec<_>>(),
        ),
    };
    Fig03Result {
        spec: suite_mpki(spec_records),
        qmm: suite_mpki(qmm_records),
    }
}

impl fmt::Display for Fig03Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = vec![
            (
                "SPEC-like".to_string(),
                format!(
                    "{:>8.2} {:>8.2} {:>8.2}",
                    self.spec.l1i, self.spec.itlb, self.spec.istlb
                ),
            ),
            (
                "QMM-like".to_string(),
                format!(
                    "{:>8.2} {:>8.2} {:>8.2}",
                    self.qmm.l1i, self.qmm.itlb, self.qmm.istlb
                ),
            ),
        ];
        write!(
            f,
            "{}",
            render_table(
                "Fig 3: front-end MPKI",
                ("suite", "     L1I    I-TLB    iSTLB"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qmm_dwarfs_spec_on_every_structure() {
        let r = run(&Runner::new(2), &Scale::test());
        assert!(
            r.qmm.istlb > 4.0 * r.spec.istlb,
            "qmm {} vs spec {}",
            r.qmm.istlb,
            r.spec.istlb
        );
        assert!(r.qmm.itlb > 2.0 * r.spec.itlb);
        assert!(r.qmm.l1i > r.spec.l1i);
        // §5: SPEC workloads sit below the 0.5 iSTLB MPKI intensity bar.
        assert!(r.spec.istlb < 0.5, "spec istlb {}", r.spec.istlb);
    }
}
