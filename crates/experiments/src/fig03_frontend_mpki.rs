//! Fig 3: mean L1I / I-TLB / iSTLB MPKI, SPEC-like vs QMM-like suites.
//!
//! The claim: QMM server workloads suffer roughly an order of magnitude
//! more instruction misses in all three front-end structures than SPEC CPU
//! workloads, which is why the paper's evaluation excludes SPEC.

use std::fmt;

use morrigan_sim::{Simulator, SystemConfig};
use morrigan_types::prefetcher::NullPrefetcher;
use morrigan_types::stats::mean;
use morrigan_workloads::SpecWorkload;
use serde::{Deserialize, Serialize};

use crate::common::{render_table, run_server, Scale};

/// Mean front-end MPKI rates of one suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteMpki {
    /// Mean demand L1I misses per kilo-instruction.
    pub l1i: f64,
    /// Mean I-TLB MPKI.
    pub itlb: f64,
    /// Mean iSTLB MPKI.
    pub istlb: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig03Result {
    /// SPEC-CPU-like suite means.
    pub spec: SuiteMpki,
    /// QMM-like suite means.
    pub qmm: SuiteMpki,
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Fig03Result {
    let mut spec = (Vec::new(), Vec::new(), Vec::new());
    for cfg in morrigan_workloads::suites::spec_suite() {
        let mut sim = Simulator::new(
            SystemConfig::default(),
            Box::new(SpecWorkload::new(cfg)),
            Box::new(NullPrefetcher),
        );
        let m = sim.run(scale.sim());
        spec.0.push(m.l1i_mpki());
        spec.1.push(m.itlb_mpki());
        spec.2.push(m.istlb_mpki());
    }
    let mut qmm = (Vec::new(), Vec::new(), Vec::new());
    for cfg in scale.suite() {
        let m = run_server(
            &cfg,
            SystemConfig::default(),
            scale.sim(),
            Box::new(NullPrefetcher),
        );
        qmm.0.push(m.l1i_mpki());
        qmm.1.push(m.itlb_mpki());
        qmm.2.push(m.istlb_mpki());
    }
    Fig03Result {
        spec: SuiteMpki {
            l1i: mean(&spec.0),
            itlb: mean(&spec.1),
            istlb: mean(&spec.2),
        },
        qmm: SuiteMpki {
            l1i: mean(&qmm.0),
            itlb: mean(&qmm.1),
            istlb: mean(&qmm.2),
        },
    }
}

impl fmt::Display for Fig03Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = vec![
            (
                "SPEC-like".to_string(),
                format!(
                    "{:>8.2} {:>8.2} {:>8.2}",
                    self.spec.l1i, self.spec.itlb, self.spec.istlb
                ),
            ),
            (
                "QMM-like".to_string(),
                format!(
                    "{:>8.2} {:>8.2} {:>8.2}",
                    self.qmm.l1i, self.qmm.itlb, self.qmm.istlb
                ),
            ),
        ];
        write!(
            f,
            "{}",
            render_table(
                "Fig 3: front-end MPKI",
                ("suite", "     L1I    I-TLB    iSTLB"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qmm_dwarfs_spec_on_every_structure() {
        let r = run(&Scale::test());
        assert!(
            r.qmm.istlb > 4.0 * r.spec.istlb,
            "qmm {} vs spec {}",
            r.qmm.istlb,
            r.spec.istlb
        );
        assert!(r.qmm.itlb > 2.0 * r.spec.itlb);
        assert!(r.qmm.l1i > r.spec.l1i);
        // §5: SPEC workloads sit below the 0.5 iSTLB MPKI intensity bar.
        assert!(r.spec.istlb < 0.5, "spec istlb {}", r.spec.istlb);
    }
}
