//! Fig 8: probability of reaching the same successor after an iSTLB miss,
//! for the 50 pages missing the most.
//!
//! Finding 3: the paper measures ≈51 % / 21 % / 11 % for the most,
//! second-most, and third-most frequent successors, with 17 % going
//! elsewhere — high-probability successors are what make Markov
//! prefetching of the miss stream viable at all.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::{suite_miss_streams, Runner, Scale};

/// How many of the hottest pages the analysis considers (the paper: 50).
pub const TOP_PAGES: usize = 50;

/// The figure's data: suite-mean probabilities for the ranked successors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig08Result {
    /// P(next miss goes to the page's most frequent successor).
    pub first: f64,
    /// P(second most frequent successor).
    pub second: f64,
    /// P(third most frequent successor).
    pub third: f64,
    /// P(any other successor).
    pub other: f64,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig08Result {
    let streams = suite_miss_streams(runner, scale);
    let mut acc = [0.0f64; 4];
    for (_, stream) in &streams {
        let p = stream.successor_probabilities(TOP_PAGES);
        for i in 0..4 {
            acc[i] += p[i];
        }
    }
    for v in &mut acc {
        *v /= streams.len() as f64;
    }
    Fig08Result {
        first: acc[0],
        second: acc[1],
        third: acc[2],
        other: acc[3],
    }
}

impl fmt::Display for Fig08Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 8: successor probability, top-{TOP_PAGES} missing pages"
        )?;
        writeln!(f, "most frequent successor   {:.1}%", self.first * 100.0)?;
        writeln!(f, "second most frequent      {:.1}%", self.second * 100.0)?;
        writeln!(f, "third most frequent       {:.1}%", self.third * 100.0)?;
        writeln!(f, "other successors          {:.1}%", self.other * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_successor_dominates() {
        let r = run(&Runner::new(2), &Scale::test());
        let total = r.first + r.second + r.third + r.other;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1: {total}"
        );
        // The paper's 51 %; require clear dominance.
        assert!(r.first > 0.35, "top successor probability {}", r.first);
        assert!(r.first > r.second && r.second >= r.third, "{r:?}");
    }
}
