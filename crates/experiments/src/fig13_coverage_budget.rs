//! Fig 13 (§6.1.1): Morrigan's miss coverage as a function of the IRIP
//! storage budget.
//!
//! The paper sweeps the (fully associative) prediction-table sizes and
//! finds coverage grows steeply at small budgets and plateaus past
//! ~5–7.5 KB; the 3.76 KB point is chosen as the knee.

use std::fmt;

use morrigan::{IripConfig, MorriganConfig};
use morrigan_types::stats::mean;
use serde::{Deserialize, Serialize};

use crate::common::{server_spec, RunSpec, Runner, Scale};

/// Budget scale factors applied to the default geometry.
pub const SCALES: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// One budget point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetPoint {
    /// IRIP storage at this point, in KB.
    pub storage_kb: f64,
    /// Mean miss coverage across the suite.
    pub coverage: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Points in increasing-budget order.
    pub points: Vec<BudgetPoint>,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig13Result {
    let suite = scale.suite();
    let n = suite.len();
    let mut specs: Vec<RunSpec> = Vec::with_capacity(SCALES.len() * n);
    let mut storage_kbs = Vec::with_capacity(SCALES.len());
    for &factor in &SCALES {
        let irip = IripConfig::fully_associative().scaled(factor);
        storage_kbs.push(irip.storage_kb());
        let mcfg = MorriganConfig {
            irip,
            ..MorriganConfig::default()
        };
        specs.extend(
            suite
                .iter()
                .map(|cfg| server_spec(cfg, scale, mcfg.clone())),
        );
    }
    let records = runner.run_batch(&specs);
    let points = storage_kbs
        .into_iter()
        .enumerate()
        .map(|(i, storage_kb)| {
            let coverages: Vec<f64> = records[i * n..(i + 1) * n]
                .iter()
                .map(|record| record.metrics.coverage())
                .collect();
            BudgetPoint {
                storage_kb,
                coverage: mean(&coverages),
            }
        })
        .collect();
    Fig13Result { points }
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 13: miss coverage vs storage budget")?;
        for p in &self.points {
            writeln!(f, "{:>6.2} KB  {:.1}%", p.storage_kb, p.coverage * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn coverage_grows_then_plateaus() {
        let r = run(&Runner::new(4), &Scale::test_long());
        assert_eq!(r.points.len(), SCALES.len());
        // Monotone non-decreasing (small tolerance for run noise).
        for w in r.points.windows(2) {
            assert!(
                w[1].coverage >= w[0].coverage - 0.04,
                "coverage should grow with budget: {:?}",
                r.points
            );
        }
        // Budget must matter: the largest tables clearly beat the
        // smallest. (The paper's plateau past ~7.5 KB emerges at its full
        // 100 M-instruction horizon; at test scale we assert the growth
        // side of the curve.)
        assert!(
            r.points[5].coverage > r.points[0].coverage + 0.05,
            "budget should matter: {:?}",
            r.points
        );
    }
}
