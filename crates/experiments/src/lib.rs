//! Per-figure experiment runners regenerating every table and figure of
//! the Morrigan paper's motivation (§3) and evaluation (§6).
//!
//! Each `figXX` module exposes `run(&Runner, &Scale) -> FigXXResult`: it
//! declares its simulations as a batch of [`common::RunSpec`]s, hands
//! them to the shared [`Runner`] (worker pool + content-keyed result
//! cache, see the `morrigan-runner` crate), and folds the returned
//! records into its result struct. Results are serde-serializable and
//! render as aligned text tables via `Display`. The `figures` binary
//! runs any subset by name and shares one `Runner` across figures, so
//! common baselines are simulated exactly once per invocation.
//!
//! ## Scaling
//!
//! The paper simulates 50 M warmup + 100 M measured instructions over 45
//! workloads. That is reproducible here (`MORRIGAN_FULL=1`) but slow; the
//! default [`Scale`] uses 1 M + 3 M over 10 workloads, which is enough for
//! every *shape* the paper reports (who wins, rough factors, crossovers).
//! Override with `MORRIGAN_INSTR=<measured>` and `MORRIGAN_WORKLOADS=<n>`.
//!
//! ## Fidelity notes (also in EXPERIMENTS.md)
//!
//! The substitution of synthetic traces for the proprietary Qualcomm
//! workloads preserves orderings and mechanisms, but attenuates absolute
//! coverage/speedup: on this substrate Morrigan covers ~35–45 % of iSTLB
//! misses (paper: 76 %) and gains ~1.5–3 % geomean (paper: 7.6 %) against
//! a perfect-iSTLB ceiling of ~8–9 % (paper: 11.1 %).

pub mod common;
pub mod fig02_java_mpki;
pub mod fig03_frontend_mpki;
pub mod fig04_translation_cycles;
pub mod fig05_delta_cdf;
pub mod fig06_page_skew;
pub mod fig07_successors;
pub mod fig08_successor_prob;
pub mod fig09_dstlb_on_istlb;
pub mod fig10_fnlmma_tlb;
pub mod fig13_coverage_budget;
pub mod fig14_replacement;
pub mod fig15_iso_speedup;
pub mod fig16_walk_refs;
pub mod fig17_mono;
pub mod fig18_other_approaches;
pub mod fig19_icache_synergy;
pub mod fig20_smt;
pub mod fig21_multicore;
pub mod tuning;

pub use common::{PrefetcherKind, RunRecord, RunSpec, Runner, Scale};
