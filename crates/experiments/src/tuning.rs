//! §6.1.3's configuration study plus the DESIGN.md ablations.
//!
//! * **Associativity**: fully associative tables vs the paper's empirical
//!   set-associative choice (128×32w / 128×32w / 128×32w / 64×16w), which
//!   costs ~5 % coverage.
//! * **PB size**: 16/32/64/128 entries; the paper picks 64.
//! * **Ablations**: spatial prefetching on every slot vs only the
//!   highest-confidence slot, and SDP always-on vs gated on IRIP misses.

use std::fmt;

use morrigan::{IripConfig, MorriganConfig};
use morrigan_sim::SystemConfig;
use morrigan_types::stats::mean;
use serde::{Deserialize, Serialize};

use crate::common::{RunSpec, Runner, Scale};

/// One configuration's mean coverage (and prefetch-walk cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRow {
    /// Configuration name.
    pub config: String,
    /// Mean miss coverage across the suite.
    pub coverage: f64,
    /// Prefetch page-walk memory references per kilo-instruction (the
    /// cost side of aggressive prefetching).
    pub prefetch_refs_pki: f64,
}

/// The study's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// All measured configurations.
    pub rows: Vec<TuningRow>,
}

impl TuningResult {
    /// The row named `name`, if present.
    pub fn row(&self, name: &str) -> Option<&TuningRow> {
        self.rows.iter().find(|r| r.config == name)
    }
}

/// Runs the study.
pub fn run(runner: &Runner, scale: &Scale) -> TuningResult {
    let suite = scale.suite();
    let n = suite.len();

    let mut configs: Vec<(String, MorriganConfig, SystemConfig)> = vec![
        // Associativity.
        (
            "set-assoc (paper)".into(),
            MorriganConfig::default(),
            SystemConfig::default(),
        ),
        (
            "fully-assoc".into(),
            MorriganConfig {
                irip: IripConfig::fully_associative(),
                ..MorriganConfig::default()
            },
            SystemConfig::default(),
        ),
    ];

    // PB sizes.
    for pb in [16usize, 32, 64, 128] {
        let mut system = SystemConfig::default();
        system.mmu.pb_entries = pb;
        configs.push((format!("pb-{pb}"), MorriganConfig::default(), system));
    }

    // Ablations.
    configs.push((
        "abl: spatial on all slots".into(),
        MorriganConfig {
            spatial_max_conf_only: false,
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    ));
    configs.push((
        "abl: sdp always on".into(),
        MorriganConfig {
            sdp_only_on_irip_miss: false,
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    ));
    configs.push((
        "abl: sdp disabled".into(),
        MorriganConfig {
            sdp_enabled: false,
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    ));
    // §4.3 strategy variants.
    {
        let mut system = SystemConfig::default();
        system.mmu.engage_on_stlb_hits = true;
        configs.push((
            "abl: engage on STLB hits".into(),
            MorriganConfig::default(),
            system,
        ));
    }
    configs.push((
        "abl: context switch 500k".into(),
        MorriganConfig::default(),
        SystemConfig {
            context_switch_interval: Some(500_000),
            ..SystemConfig::default()
        },
    ));

    // One batch: every configuration across the whole suite.
    let mut specs: Vec<RunSpec> = Vec::with_capacity(configs.len() * n);
    for (_, mcfg, system) in &configs {
        specs.extend(
            suite
                .iter()
                .map(|cfg| RunSpec::server(cfg, *system, scale.sim(), mcfg.clone())),
        );
    }
    let records = runner.run_batch(&specs);

    let rows = configs
        .into_iter()
        .enumerate()
        .map(|(i, (name, _, _))| {
            let chunk = &records[i * n..(i + 1) * n];
            let coverages: Vec<f64> = chunk
                .iter()
                .map(|record| record.metrics.coverage())
                .collect();
            let refs: Vec<f64> = chunk
                .iter()
                .map(|record| {
                    record.metrics.prefetch_walk_refs() as f64 * 1000.0
                        / record.metrics.instructions as f64
                })
                .collect();
            TuningRow {
                config: name,
                coverage: mean(&coverages),
                prefetch_refs_pki: mean(&refs),
            }
        })
        .collect();

    TuningResult { rows }
}

impl fmt::Display for TuningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§6.1.3 configuration study + ablations")?;
        writeln!(
            f,
            "{:<26} {:>9} {:>14}",
            "config", "coverage", "pf refs/kinstr"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<26} {:>8.1}% {:>14.2}",
                r.config,
                r.coverage * 100.0,
                r.prefetch_refs_pki
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn pb_size_matters_and_ablations_behave() {
        let r = run(&Runner::new(4), &Scale::test_long());
        let get = |n: &str| r.row(n).expect(n);
        // Bigger PBs help (the paper: 16/32 entries cost 4–12 % coverage).
        assert!(get("pb-64").coverage >= get("pb-16").coverage - 0.02, "{r}");
        assert!(
            get("pb-128").coverage >= get("pb-64").coverage - 0.02,
            "{r}"
        );
        // SDP-off loses the sequential + spatial component entirely: both
        // the coverage and the background walk traffic drop.
        assert!(
            get("abl: sdp disabled").coverage < get("set-assoc (paper)").coverage - 0.02,
            "{r}"
        );
        assert!(
            get("abl: sdp disabled").prefetch_refs_pki < get("set-assoc (paper)").prefetch_refs_pki,
            "{r}"
        );
    }
}
