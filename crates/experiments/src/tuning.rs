//! §6.1.3's configuration study plus the DESIGN.md ablations.
//!
//! * **Associativity**: fully associative tables vs the paper's empirical
//!   set-associative choice (128×32w / 128×32w / 128×32w / 64×16w), which
//!   costs ~5 % coverage.
//! * **PB size**: 16/32/64/128 entries; the paper picks 64.
//! * **Ablations**: spatial prefetching on every slot vs only the
//!   highest-confidence slot, and SDP always-on vs gated on IRIP misses.

use std::fmt;

use morrigan::{IripConfig, Morrigan, MorriganConfig};
use morrigan_sim::SystemConfig;
use morrigan_types::stats::mean;
use serde::{Deserialize, Serialize};

use crate::common::{run_server, Scale};

/// One configuration's mean coverage (and prefetch-walk cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRow {
    /// Configuration name.
    pub config: String,
    /// Mean miss coverage across the suite.
    pub coverage: f64,
    /// Prefetch page-walk memory references per kilo-instruction (the
    /// cost side of aggressive prefetching).
    pub prefetch_refs_pki: f64,
}

/// The study's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// All measured configurations.
    pub rows: Vec<TuningRow>,
}

impl TuningResult {
    /// The row named `name`, if present.
    pub fn row(&self, name: &str) -> Option<&TuningRow> {
        self.rows.iter().find(|r| r.config == name)
    }
}

/// Runs the study.
pub fn run(scale: &Scale) -> TuningResult {
    let suite = scale.suite();
    let mut rows = Vec::new();

    let mut measure = |name: &str, mcfg: MorriganConfig, system: SystemConfig| {
        let mut coverages = Vec::new();
        let mut refs = Vec::new();
        for cfg in &suite {
            let m = run_server(
                cfg,
                system,
                scale.sim(),
                Box::new(Morrigan::new(mcfg.clone())),
            );
            coverages.push(m.coverage());
            refs.push(m.prefetch_walk_refs() as f64 * 1000.0 / m.instructions as f64);
        }
        rows.push(TuningRow {
            config: name.to_string(),
            coverage: mean(&coverages),
            prefetch_refs_pki: mean(&refs),
        });
    };

    // Associativity.
    measure(
        "set-assoc (paper)",
        MorriganConfig::default(),
        SystemConfig::default(),
    );
    measure(
        "fully-assoc",
        MorriganConfig {
            irip: IripConfig::fully_associative(),
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    );

    // PB sizes.
    for pb in [16usize, 32, 64, 128] {
        let mut system = SystemConfig::default();
        system.mmu.pb_entries = pb;
        measure(&format!("pb-{pb}"), MorriganConfig::default(), system);
    }

    // Ablations.
    measure(
        "abl: spatial on all slots",
        MorriganConfig {
            spatial_max_conf_only: false,
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    );
    measure(
        "abl: sdp always on",
        MorriganConfig {
            sdp_only_on_irip_miss: false,
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    );
    measure(
        "abl: sdp disabled",
        MorriganConfig {
            sdp_enabled: false,
            ..MorriganConfig::default()
        },
        SystemConfig::default(),
    );
    // §4.3 strategy variants.
    {
        let mut system = SystemConfig::default();
        system.mmu.engage_on_stlb_hits = true;
        measure(
            "abl: engage on STLB hits",
            MorriganConfig::default(),
            system,
        );
    }
    {
        let mut system = SystemConfig::default();
        system.context_switch_interval = Some(500_000);
        measure(
            "abl: context switch 500k",
            MorriganConfig::default(),
            system,
        );
    }

    TuningResult { rows }
}

impl fmt::Display for TuningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§6.1.3 configuration study + ablations")?;
        writeln!(
            f,
            "{:<26} {:>9} {:>14}",
            "config", "coverage", "pf refs/kinstr"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<26} {:>8.1}% {:>14.2}",
                r.config,
                r.coverage * 100.0,
                r.prefetch_refs_pki
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn pb_size_matters_and_ablations_behave() {
        let r = run(&Scale::test_long());
        let get = |n: &str| r.row(n).expect(n);
        // Bigger PBs help (the paper: 16/32 entries cost 4–12 % coverage).
        assert!(get("pb-64").coverage >= get("pb-16").coverage - 0.02, "{r}");
        assert!(
            get("pb-128").coverage >= get("pb-64").coverage - 0.02,
            "{r}"
        );
        // SDP-off loses the sequential + spatial component entirely: both
        // the coverage and the background walk traffic drop.
        assert!(
            get("abl: sdp disabled").coverage < get("set-assoc (paper)").coverage - 0.02,
            "{r}"
        );
        assert!(
            get("abl: sdp disabled").prefetch_refs_pki < get("set-assoc (paper)").prefetch_refs_pki,
            "{r}"
        );
    }
}
