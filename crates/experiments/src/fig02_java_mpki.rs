//! Fig 2: iSTLB MPKI of Java server workloads.
//!
//! The paper measures seven DaCapo/Renaissance workloads on a Skylake with
//! perf counters; we run the corresponding Java-server-like synthetic
//! configs through the simulator (no prefetching) and report their iSTLB
//! MPKI. The claim being reproduced: server-class Java workloads sustain
//! an iSTLB MPKI in the ~0.5–2.5 band, i.e. instruction translation is a
//! bottleneck even with a large STLB.

use std::fmt;

use morrigan_sim::SystemConfig;
use serde::{Deserialize, Serialize};

use crate::common::{render_table, PrefetcherKind, RunSpec, Runner, Scale};

/// One workload's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JavaMpkiRow {
    /// Workload name (cassandra, tomcat, ...).
    pub workload: String,
    /// Demand iSTLB misses per kilo-instruction.
    pub istlb_mpki: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig02Result {
    /// Per-workload rows in suite order.
    pub rows: Vec<JavaMpkiRow>,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig02Result {
    let suite = morrigan_workloads::suites::java_server_suite();
    let specs: Vec<RunSpec> = suite
        .iter()
        .map(|cfg| {
            RunSpec::server(
                cfg,
                SystemConfig::default(),
                scale.sim(),
                PrefetcherKind::None,
            )
        })
        .collect();
    let rows = runner
        .run_batch(&specs)
        .iter()
        .zip(&suite)
        .map(|(record, cfg)| JavaMpkiRow {
            workload: cfg.name.clone(),
            istlb_mpki: record.metrics.istlb_mpki(),
        })
        .collect();
    Fig02Result { rows }
}

impl fmt::Display for Fig02Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, String)> = self
            .rows
            .iter()
            .map(|r| (r.workload.clone(), format!("{:.2}", r.istlb_mpki)))
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Fig 2: Java server iSTLB MPKI",
                ("workload", "iSTLB MPKI"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_workloads_are_istlb_intensive() {
        let result = run(&Runner::new(2), &Scale::test());
        assert_eq!(result.rows.len(), 7);
        // The paper's band is 0.6–2.1; at test scale we only require the
        // workloads to be clearly translation-intensive.
        for row in &result.rows {
            assert!(
                row.istlb_mpki > 0.3,
                "{} mpki {}",
                row.workload,
                row.istlb_mpki
            );
            assert!(
                row.istlb_mpki < 6.0,
                "{} mpki {}",
                row.workload,
                row.istlb_mpki
            );
        }
        let text = result.to_string();
        assert!(text.contains("cassandra"));
    }
}
