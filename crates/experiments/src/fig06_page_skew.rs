//! Fig 6: instruction pages sorted by STLB miss frequency.
//!
//! Finding 2: a modest number of pages is responsible for the majority of
//! iSTLB misses — the paper measures 400–800 pages covering 90 % of the
//! misses across the QMM workloads.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::{suite_miss_streams, Runner, Scale};

/// One workload's skew measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageSkewRow {
    /// Workload name.
    pub workload: String,
    /// Total iSTLB misses observed.
    pub total_misses: u64,
    /// Distinct pages that missed.
    pub distinct_pages: usize,
    /// Hottest pages covering 50 % of misses.
    pub pages_for_50: usize,
    /// Hottest pages covering 75 % of misses.
    pub pages_for_75: usize,
    /// Hottest pages covering 90 % of misses.
    pub pages_for_90: usize,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig06Result {
    /// Per-workload rows.
    pub rows: Vec<PageSkewRow>,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig06Result {
    let rows = suite_miss_streams(runner, scale)
        .into_iter()
        .map(|(workload, stream)| PageSkewRow {
            workload,
            total_misses: stream.total_misses,
            distinct_pages: stream.page_hist.len(),
            pages_for_50: stream.pages_covering(0.5),
            pages_for_75: stream.pages_covering(0.75),
            pages_for_90: stream.pages_covering(0.9),
        })
        .collect();
    Fig06Result { rows }
}

impl fmt::Display for Fig06Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 6: page skew of the iSTLB miss stream")?;
        writeln!(
            f,
            "{:<12} {:>8} {:>9} {:>7} {:>7} {:>7}",
            "workload", "misses", "distinct", "p50", "p75", "p90"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8} {:>9} {:>7} {:>7} {:>7}",
                r.workload,
                r.total_misses,
                r.distinct_pages,
                r.pages_for_50,
                r.pages_for_75,
                r.pages_for_90
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_are_skewed_toward_few_pages() {
        let r = run(&Runner::new(2), &Scale::test());
        for row in &r.rows {
            assert!(row.total_misses > 0);
            assert!(
                row.pages_for_50 * 2 < row.distinct_pages,
                "{}: half the misses should come from well under half of the pages ({} of {})",
                row.workload,
                row.pages_for_50,
                row.distinct_pages
            );
            assert!(row.pages_for_50 <= row.pages_for_75);
            assert!(row.pages_for_75 <= row.pages_for_90);
        }
    }
}
