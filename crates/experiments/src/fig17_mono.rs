//! Fig 17 (§6.3): the ensemble versus Morrigan-mono.
//!
//! ISO-storage ablation: the four-table ensemble (448 tracked pages) vs a
//! single 203-entry table with 8 slots per entry. The paper measures a
//! 1.9 % mean advantage for the ensemble because variable-length chains
//! waste no slots on single-successor pages.

use std::fmt;

use morrigan_types::stats::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::common::{
    baseline_spec, server_spec, PrefetcherKind, RunRecord, RunSpec, Runner, Scale,
};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig17Result {
    /// Geomean speedup of the ensemble design.
    pub ensemble_speedup: f64,
    /// Geomean speedup of the mono design.
    pub mono_speedup: f64,
    /// Mean coverage of the ensemble design.
    pub ensemble_coverage: f64,
    /// Mean coverage of the mono design.
    pub mono_coverage: f64,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig17Result {
    let suite = scale.suite();
    let n = suite.len();

    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    for kind in [PrefetcherKind::Morrigan, PrefetcherKind::MorriganMono] {
        specs.extend(suite.iter().map(|cfg| server_spec(cfg, scale, kind)));
    }
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    let measure = |chunk: &[std::sync::Arc<RunRecord>]| {
        let speedups: Vec<f64> = chunk
            .iter()
            .zip(baselines)
            .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
            .collect();
        let coverages: Vec<f64> = chunk
            .iter()
            .map(|record| record.metrics.coverage())
            .collect();
        (geometric_mean(&speedups), mean(&coverages))
    };
    let (ensemble_speedup, ensemble_coverage) = measure(&records[n..2 * n]);
    let (mono_speedup, mono_coverage) = measure(&records[2 * n..]);
    Fig17Result {
        ensemble_speedup,
        mono_speedup,
        ensemble_coverage,
        mono_coverage,
    }
}

impl fmt::Display for Fig17Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 17: ensemble vs single-table (ISO-storage)")?;
        writeln!(
            f,
            "morrigan       {:+.2}%  (coverage {:.1}%)",
            (self.ensemble_speedup - 1.0) * 100.0,
            self.ensemble_coverage * 100.0
        )?;
        writeln!(
            f,
            "morrigan-mono  {:+.2}%  (coverage {:.1}%)",
            (self.mono_speedup - 1.0) * 100.0,
            self.mono_coverage * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn ensemble_beats_mono() {
        let r = run(&Runner::new(4), &Scale::test_long());
        assert!(
            r.ensemble_coverage >= r.mono_coverage - 0.01,
            "the ensemble tracks more pages for the same storage: {r:?}"
        );
        assert!(
            r.ensemble_speedup >= r.mono_speedup - 0.003,
            "the ensemble should not lose: {r:?}"
        );
    }
}
