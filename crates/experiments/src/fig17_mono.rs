//! Fig 17 (§6.3): the ensemble versus Morrigan-mono.
//!
//! ISO-storage ablation: the four-table ensemble (448 tracked pages) vs a
//! single 203-entry table with 8 slots per entry. The paper measures a
//! 1.9 % mean advantage for the ensemble because variable-length chains
//! waste no slots on single-successor pages.

use std::fmt;

use morrigan_sim::SystemConfig;
use morrigan_types::stats::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::common::{run_server, suite_baselines, PrefetcherKind, Scale};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig17Result {
    /// Geomean speedup of the ensemble design.
    pub ensemble_speedup: f64,
    /// Geomean speedup of the mono design.
    pub mono_speedup: f64,
    /// Mean coverage of the ensemble design.
    pub ensemble_coverage: f64,
    /// Mean coverage of the mono design.
    pub mono_coverage: f64,
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Fig17Result {
    let baselines = suite_baselines(scale);
    let measure = |kind: PrefetcherKind| {
        let mut speedups = Vec::new();
        let mut coverages = Vec::new();
        for (cfg, base) in &baselines {
            let m = run_server(cfg, SystemConfig::default(), scale.sim(), kind.build());
            speedups.push(m.speedup_over(base));
            coverages.push(m.coverage());
        }
        (geometric_mean(&speedups), mean(&coverages))
    };
    let (ensemble_speedup, ensemble_coverage) = measure(PrefetcherKind::Morrigan);
    let (mono_speedup, mono_coverage) = measure(PrefetcherKind::MorriganMono);
    Fig17Result {
        ensemble_speedup,
        mono_speedup,
        ensemble_coverage,
        mono_coverage,
    }
}

impl fmt::Display for Fig17Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 17: ensemble vs single-table (ISO-storage)")?;
        writeln!(
            f,
            "morrigan       {:+.2}%  (coverage {:.1}%)",
            (self.ensemble_speedup - 1.0) * 100.0,
            self.ensemble_coverage * 100.0
        )?;
        writeln!(
            f,
            "morrigan-mono  {:+.2}%  (coverage {:.1}%)",
            (self.mono_speedup - 1.0) * 100.0,
            self.mono_coverage * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn ensemble_beats_mono() {
        let r = run(&Scale::test_long());
        assert!(
            r.ensemble_coverage >= r.mono_coverage - 0.01,
            "the ensemble tracks more pages for the same storage: {r:?}"
        );
        assert!(
            r.ensemble_speedup >= r.mono_speedup - 0.003,
            "the ensemble should not lose: {r:?}"
        );
    }
}
