//! Fig 10 (§3.5): FNL+MMA with and without instruction address
//! translation costs.
//!
//! The IPC-1 infrastructure translates page-crossing prefetches for free;
//! once translation is modelled, those prefetches need page walks that
//! occupy the shared walker and arrive too late — so the prefetcher's
//! gain shrinks and only a modest fraction of demand iSTLB misses is
//! removed (the paper measures 29.6 %). Finding 5.

use std::fmt;

use morrigan_sim::{IcachePrefetcherKind, SystemConfig};
use morrigan_types::stats::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::common::{baseline_spec, PrefetcherKind, RunSpec, Runner, Scale};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Geomean speedup of FNL+MMA on the IPC-1-style infrastructure,
    /// where instruction address translation is not modelled at all (both
    /// the baseline and the prefetcher run with a perfect iSTLB).
    pub speedup_free_translation: f64,
    /// Geomean speedup with translation modelled (the real view).
    pub speedup_with_translation: f64,
    /// Mean reduction of demand page walks with translation modelled (the
    /// paper measures only 29.6 %: poor timeliness).
    pub mean_walk_reduction: f64,
    /// Mean page-crossing prefetch walks per kilo-instruction (the walker
    /// pressure that delays demand walks).
    pub crossing_walks_pki: f64,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig10Result {
    let suite = scale.suite();
    let n = suite.len();

    // The IPC-1 view: address translation does not exist. Both sides run
    // with a perfect iSTLB, so the measured gain is purely the I-cache
    // effect — the number the contest reported.
    let mut perfect = SystemConfig::default();
    perfect.mmu.perfect_istlb = true;
    let mut perfect_fnl = perfect;
    perfect_fnl.icache_prefetcher = IcachePrefetcherKind::FnlMma {
        translation_cost: false,
    };
    // The real view: translation modelled end to end.
    let costly_system = SystemConfig {
        icache_prefetcher: IcachePrefetcherKind::FnlMma {
            translation_cost: true,
        },
        ..SystemConfig::default()
    };

    // One batch: baselines, perfect pairs, then the costly view.
    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    for system in [perfect, perfect_fnl, costly_system] {
        specs.extend(
            suite
                .iter()
                .map(|cfg| RunSpec::server(cfg, system, scale.sim(), PrefetcherKind::None)),
        );
    }
    let records = runner.run_batch(&specs);
    let (baselines, rest) = records.split_at(n);
    let (perfect_base, rest) = rest.split_at(n);
    let (perfect_with_fnl, costly) = rest.split_at(n);

    let free: Vec<f64> = perfect_with_fnl
        .iter()
        .zip(perfect_base)
        .map(|(fnl, base)| fnl.metrics.speedup_over(&base.metrics))
        .collect();
    let costly_speedups: Vec<f64> = costly
        .iter()
        .zip(baselines)
        .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
        .collect();
    let walk_reductions: Vec<f64> = costly
        .iter()
        .zip(baselines)
        .map(|(record, base)| {
            1.0 - record.metrics.walker.demand_instr_walks as f64
                / base.metrics.walker.demand_instr_walks.max(1) as f64
        })
        .collect();
    let crossing: Vec<f64> = costly
        .iter()
        .map(|record| {
            record.metrics.iprefetch_translation_walks as f64 * 1000.0
                / record.metrics.instructions as f64
        })
        .collect();

    Fig10Result {
        speedup_free_translation: geometric_mean(&free),
        speedup_with_translation: geometric_mean(&costly_speedups),
        mean_walk_reduction: mean(&walk_reductions),
        crossing_walks_pki: mean(&crossing),
    }
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 10: FNL+MMA and address translation")?;
        writeln!(
            f,
            "FNL+MMA, free translation:     {:+.2}%",
            (self.speedup_free_translation - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "FNL+MMA+TLB (translation):     {:+.2}%",
            (self.speedup_with_translation - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "demand page-walk reduction:    {:.1}%",
            self.mean_walk_reduction * 100.0
        )?;
        writeln!(
            f,
            "page-crossing prefetch walks:  {:.2} / kinstr",
            self.crossing_walks_pki
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_cost_erodes_the_gain() {
        let r = run(&Runner::new(2), &Scale::test());
        assert!(
            r.speedup_with_translation <= r.speedup_free_translation + 0.01,
            "the IPC-1 view must look at least as good as the real view: {r:?}"
        );
        assert!(
            r.crossing_walks_pki > 0.0,
            "page crossings must trigger walks"
        );
        // Finding 5: only a partial reduction of demand page walks.
        assert!(
            r.mean_walk_reduction < 0.7,
            "reduction should be partial: {r:?}"
        );
        assert!(
            r.mean_walk_reduction > -0.2,
            "prefetching should not add demand walks: {r:?}"
        );
    }
}
