//! Fig 20 (§6.6): SMT colocation.
//!
//! Pairs of QMM workloads share one core (and all its TLBs, PSCs, caches,
//! walker, and prediction tables). Colocation raises TLB pressure, so the
//! absolute gains are larger than single-threaded; the IRIP tables are
//! doubled (7.5 KB) per the paper. A secondary result reproduces the
//! paper's note that *not* doubling the tables costs some of the gain.

use std::fmt;

use morrigan::{Morrigan, MorriganConfig};
use morrigan_sim::{IcachePrefetcherKind, Metrics, SimConfig, Simulator, SystemConfig};
use morrigan_types::prefetcher::NullPrefetcher;
use morrigan_types::stats::geometric_mean;
use morrigan_types::TlbPrefetcher;
use morrigan_workloads::{ServerWorkload, ServerWorkloadConfig};
use serde::{Deserialize, Serialize};

use crate::common::Scale;

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig20Result {
    /// Morrigan with doubled tables (the paper's SMT configuration).
    pub morrigan_speedup: f64,
    /// FNL+MMA alone (translation modelled).
    pub fnlmma_speedup: f64,
    /// Morrigan (doubled) + FNL+MMA.
    pub combined_speedup: f64,
    /// Morrigan with single-thread-sized tables (the paper's secondary
    /// observation: smaller gains).
    pub morrigan_undoubled_speedup: f64,
}

fn run_pair(
    pair: &(ServerWorkloadConfig, ServerWorkloadConfig),
    system: SystemConfig,
    sim: SimConfig,
    prefetcher: Box<dyn TlbPrefetcher>,
) -> Metrics {
    let mut simulator = Simulator::new_smt(
        system,
        vec![
            Box::new(ServerWorkload::new(pair.0.clone())),
            Box::new(ServerWorkload::new(pair.1.clone())),
        ],
        prefetcher,
    );
    simulator.run(sim)
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Fig20Result {
    let pairs = morrigan_workloads::suites::smt_pairs(scale.smt_pairs);
    let sim = scale.sim();

    let mut fnl_system = SystemConfig::default();
    fnl_system.icache_prefetcher = IcachePrefetcherKind::FnlMma {
        translation_cost: true,
    };

    let mut morrigan = Vec::new();
    let mut fnl = Vec::new();
    let mut combined = Vec::new();
    let mut undoubled = Vec::new();
    for pair in &pairs {
        let base = run_pair(pair, SystemConfig::default(), sim, Box::new(NullPrefetcher));

        let m = run_pair(
            pair,
            SystemConfig::default(),
            sim,
            Box::new(Morrigan::new(MorriganConfig::smt())),
        );
        morrigan.push(m.speedup_over(&base));

        let m = run_pair(pair, fnl_system, sim, Box::new(NullPrefetcher));
        fnl.push(m.speedup_over(&base));

        let m = run_pair(
            pair,
            fnl_system,
            sim,
            Box::new(Morrigan::new(MorriganConfig::smt())),
        );
        combined.push(m.speedup_over(&base));

        let single_tables = MorriganConfig {
            max_threads: 2,
            ..MorriganConfig::default()
        };
        let m = run_pair(
            pair,
            SystemConfig::default(),
            sim,
            Box::new(Morrigan::new(single_tables)),
        );
        undoubled.push(m.speedup_over(&base));
    }

    Fig20Result {
        morrigan_speedup: geometric_mean(&morrigan),
        fnlmma_speedup: geometric_mean(&fnl),
        combined_speedup: geometric_mean(&combined),
        morrigan_undoubled_speedup: geometric_mean(&undoubled),
    }
}

impl fmt::Display for Fig20Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 20: SMT colocation")?;
        writeln!(
            f,
            "morrigan (2x tables)    {:+.2}%",
            (self.morrigan_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "fnl+mma                 {:+.2}%",
            (self.fnlmma_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan+fnl+mma        {:+.2}%",
            (self.combined_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan (1x tables)    {:+.2}%",
            (self.morrigan_undoubled_speedup - 1.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn smt_gains_and_orderings() {
        let r = run(&Scale::test_long());
        assert!(r.morrigan_speedup > 1.0, "{r:?}");
        assert!(r.combined_speedup >= r.morrigan_speedup - 0.01, "{r:?}");
        assert!(
            r.morrigan_speedup >= r.morrigan_undoubled_speedup - 0.02,
            "doubled tables should not lose: {r:?}"
        );
    }
}
