//! Fig 20 (§6.6): SMT colocation.
//!
//! Pairs of QMM workloads share one core (and all its TLBs, PSCs, caches,
//! walker, and prediction tables). Colocation raises TLB pressure, so the
//! absolute gains are larger than single-threaded; the IRIP tables are
//! doubled (7.5 KB) per the paper. A secondary result reproduces the
//! paper's note that *not* doubling the tables costs some of the gain.

use std::fmt;

use morrigan::MorriganConfig;
use morrigan_sim::{IcachePrefetcherKind, SystemConfig};
use morrigan_types::stats::geometric_mean;
use serde::{Deserialize, Serialize};

use crate::common::{PrefetcherKind, PrefetcherSpec, RunSpec, Runner, Scale};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig20Result {
    /// Morrigan with doubled tables (the paper's SMT configuration).
    pub morrigan_speedup: f64,
    /// FNL+MMA alone (translation modelled).
    pub fnlmma_speedup: f64,
    /// Morrigan (doubled) + FNL+MMA.
    pub combined_speedup: f64,
    /// Morrigan with single-thread-sized tables (the paper's secondary
    /// observation: smaller gains).
    pub morrigan_undoubled_speedup: f64,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig20Result {
    let pairs = morrigan_workloads::suites::smt_pairs(scale.smt_pairs);
    let n = pairs.len();

    let fnl_system = SystemConfig {
        icache_prefetcher: IcachePrefetcherKind::FnlMma {
            translation_cost: true,
        },
        ..SystemConfig::default()
    };
    // Single-thread-sized tables still configured for two threads.
    let undoubled_cfg = MorriganConfig {
        max_threads: 2,
        ..MorriganConfig::default()
    };

    // One batch: baselines, then the four prefetched variants.
    let variants: [(SystemConfig, PrefetcherSpec); 5] = [
        (SystemConfig::default(), PrefetcherKind::None.into()),
        (SystemConfig::default(), PrefetcherKind::MorriganSmt.into()),
        (fnl_system, PrefetcherKind::None.into()),
        (fnl_system, PrefetcherKind::MorriganSmt.into()),
        (SystemConfig::default(), undoubled_cfg.into()),
    ];
    let mut specs: Vec<RunSpec> = Vec::with_capacity(variants.len() * n);
    for (system, prefetcher) in &variants {
        specs.extend(
            pairs
                .iter()
                .map(|pair| RunSpec::smt(pair, *system, scale.sim(), prefetcher.clone())),
        );
    }
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    let geomean_vs_baseline = |k: usize| {
        let speedups: Vec<f64> = records[n * k..n * (k + 1)]
            .iter()
            .zip(baselines)
            .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
            .collect();
        geometric_mean(&speedups)
    };

    Fig20Result {
        morrigan_speedup: geomean_vs_baseline(1),
        fnlmma_speedup: geomean_vs_baseline(2),
        combined_speedup: geomean_vs_baseline(3),
        morrigan_undoubled_speedup: geomean_vs_baseline(4),
    }
}

impl fmt::Display for Fig20Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 20: SMT colocation")?;
        writeln!(
            f,
            "morrigan (2x tables)    {:+.2}%",
            (self.morrigan_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "fnl+mma                 {:+.2}%",
            (self.fnlmma_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan+fnl+mma        {:+.2}%",
            (self.combined_speedup - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "morrigan (1x tables)    {:+.2}%",
            (self.morrigan_undoubled_speedup - 1.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn smt_gains_and_orderings() {
        let r = run(&Runner::new(4), &Scale::test_long());
        assert!(r.morrigan_speedup > 1.0, "{r:?}");
        assert!(r.combined_speedup >= r.morrigan_speedup - 0.01, "{r:?}");
        assert!(
            r.morrigan_speedup >= r.morrigan_undoubled_speedup - 0.02,
            "doubled tables should not lose: {r:?}"
        );
    }
}
