//! Fig 14 (§6.1.2): miss coverage per replacement policy across budgets.
//!
//! The paper's key replacement insight: frequency beats recency for iSTLB
//! prediction tables. At small budgets LRU and Random lag, LFU does
//! better, and RLFU's randomized second chance adds ~5 % coverage on top;
//! as budgets grow, the tables hold everything and the policies converge.

use std::fmt;

use morrigan::{IripConfig, MorriganConfig, ReplacementPolicy};
use morrigan_types::stats::mean;
use serde::{Deserialize, Serialize};

use crate::common::{server_spec, RunSpec, Runner, Scale};

/// Budget scale factors (a subset of Fig 13's, for runtime).
pub const SCALES: [f64; 3] = [0.5, 1.0, 4.0];

/// Coverage of one policy at one budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// Policy name.
    pub policy: String,
    /// IRIP storage in KB.
    pub storage_kb: f64,
    /// Mean miss coverage across the suite.
    pub coverage: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Result {
    /// All (policy × budget) points.
    pub points: Vec<PolicyPoint>,
}

impl Fig14Result {
    /// Coverage of `policy` at scale factor index `scale_idx`.
    pub fn coverage_of(&self, policy: ReplacementPolicy, scale_idx: usize) -> f64 {
        self.points
            .iter()
            .find(|p| {
                p.policy == policy.name()
                    && (p.storage_kb
                        - IripConfig::fully_associative()
                            .scaled(SCALES[scale_idx])
                            .storage_kb())
                    .abs()
                        < 1e-9
            })
            .map(|p| p.coverage)
            .expect("point exists")
    }
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig14Result {
    let suite = scale.suite();
    let n = suite.len();
    let mut specs: Vec<RunSpec> = Vec::new();
    let mut labels = Vec::new();
    for &factor in &SCALES {
        for policy in ReplacementPolicy::ALL {
            let mut irip = IripConfig::fully_associative().scaled(factor);
            irip.policy = policy;
            labels.push((policy, irip.storage_kb()));
            let mcfg = MorriganConfig {
                irip,
                ..MorriganConfig::default()
            };
            specs.extend(
                suite
                    .iter()
                    .map(|cfg| server_spec(cfg, scale, mcfg.clone())),
            );
        }
    }
    let records = runner.run_batch(&specs);
    let points = labels
        .into_iter()
        .enumerate()
        .map(|(i, (policy, storage_kb))| {
            let coverages: Vec<f64> = records[i * n..(i + 1) * n]
                .iter()
                .map(|record| record.metrics.coverage())
                .collect();
            PolicyPoint {
                policy: policy.name().to_string(),
                storage_kb,
                coverage: mean(&coverages),
            }
        })
        .collect();
    Fig14Result { points }
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 14: coverage per replacement policy")?;
        writeln!(f, "{:<8} {:>9} {:>9}", "policy", "KB", "coverage")?;
        for p in &self.points {
            writeln!(
                f,
                "{:<8} {:>9.2} {:>8.1}%",
                p.policy,
                p.storage_kb,
                p.coverage * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn frequency_beats_recency_at_small_budgets() {
        let r = run(&Runner::new(4), &Scale::test_long());
        // At the smallest budget, RLFU should not lose to LRU or Random;
        // frequency-based policies should be at least competitive.
        let rlfu = r.coverage_of(ReplacementPolicy::Rlfu, 0);
        let lru = r.coverage_of(ReplacementPolicy::Lru, 0);
        let random = r.coverage_of(ReplacementPolicy::Random, 0);
        assert!(rlfu >= lru - 0.03, "RLFU {rlfu} vs LRU {lru}");
        assert!(rlfu >= random - 0.03, "RLFU {rlfu} vs Random {random}");
        // At the largest budget the policies converge.
        let spread: Vec<f64> = ReplacementPolicy::ALL
            .iter()
            .map(|&p| r.coverage_of(p, 2))
            .collect();
        let max = spread.iter().cloned().fold(f64::MIN, f64::max);
        let min = spread.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max - min < 0.12,
            "policies should converge at large budgets: {spread:?}"
        );
    }
}
