//! Fig 9 (§3.4): prior dSTLB prefetchers applied to the iSTLB miss
//! stream, against the Perfect-iSTLB upper bound, plus the two idealized
//! unbounded Markov variants.
//!
//! The shape being reproduced: SP gains a little (sequential component),
//! ASP and DP gain ~nothing (PC/distance features do not correlate with
//! instruction misses), bounded MP gains ~nothing (LRU + fixed slots),
//! while *unbounded* MP recovers most of the Perfect-iSTLB opportunity —
//! the observation that motivates IRIP (Finding 4).

use std::fmt;

use morrigan_sim::SystemConfig;
use morrigan_types::stats::geometric_mean;
use serde::{Deserialize, Serialize};

use crate::common::{
    baseline_spec, render_table, server_spec, PrefetcherKind, RunSpec, Runner, Scale,
};

/// One prefetcher's aggregate result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Geometric-mean speedup over the no-prefetching baseline.
    pub geomean_speedup: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig09Result {
    /// Rows for SP/ASP/DP/MP, the unbounded variants, and Perfect iSTLB.
    pub rows: Vec<SpeedupRow>,
}

impl Fig09Result {
    /// The geomean speedup of `name`, if present.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.prefetcher == name)
            .map(|r| r.geomean_speedup)
    }
}

/// The dSTLB prefetchers the figure replays on the instruction stream.
const KINDS: [PrefetcherKind; 6] = [
    PrefetcherKind::Sp,
    PrefetcherKind::Asp,
    PrefetcherKind::Dp,
    PrefetcherKind::Mp,
    PrefetcherKind::MpUnbounded2,
    PrefetcherKind::MpUnboundedInf,
];

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig09Result {
    let suite = scale.suite();
    let n = suite.len();
    let mut perfect_system = SystemConfig::default();
    perfect_system.mmu.perfect_istlb = true;

    // One batch: baselines, then each prefetcher's sweep, then perfect.
    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    for kind in KINDS {
        specs.extend(suite.iter().map(|cfg| server_spec(cfg, scale, kind)));
    }
    specs.extend(
        suite
            .iter()
            .map(|cfg| RunSpec::server(cfg, perfect_system, scale.sim(), PrefetcherKind::None)),
    );
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    let geomean_vs_baseline = |chunk: &[std::sync::Arc<crate::common::RunRecord>]| {
        let speedups: Vec<f64> = chunk
            .iter()
            .zip(baselines)
            .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
            .collect();
        geometric_mean(&speedups)
    };

    let mut rows = Vec::new();
    for (k, kind) in KINDS.iter().enumerate() {
        rows.push(SpeedupRow {
            prefetcher: kind.name().to_string(),
            geomean_speedup: geomean_vs_baseline(&records[n * (k + 1)..n * (k + 2)]),
        });
    }
    rows.push(SpeedupRow {
        prefetcher: "perfect-istlb".to_string(),
        geomean_speedup: geomean_vs_baseline(&records[n * (KINDS.len() + 1)..]),
    });

    Fig09Result { rows }
}

impl fmt::Display for Fig09Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, String)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.prefetcher.clone(),
                    format!("{:+.2}%", (r.geomean_speedup - 1.0) * 100.0),
                )
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Fig 9: dSTLB prefetchers on the iSTLB stream",
                ("prefetcher", "geomean speedup"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn ordering_matches_paper() {
        let r = run(&Runner::new(4), &Scale::test_long());
        let get = |n: &str| r.speedup_of(n).expect(n);
        let perfect = get("perfect-istlb");
        assert!(
            perfect > 1.02,
            "perfect upper bound must be substantial: {perfect}"
        );
        // Every real prefetcher is bounded by perfect.
        for row in &r.rows {
            assert!(
                row.geomean_speedup <= perfect + 0.005,
                "{row:?} above perfect {perfect}"
            );
            assert!(
                row.geomean_speedup > 0.97,
                "{row:?} should not tank performance"
            );
        }
        // The unbounded idealization beats the bounded original design.
        assert!(
            get("mp-unbounded-inf") >= get("mp") - 0.002,
            "unbounded MP must not lose to bounded MP"
        );
        // ASP and DP provide ~no speedup on the instruction stream.
        assert!(
            get("asp") < 1.02,
            "ASP should be near-useless: {}",
            get("asp")
        );
        assert!(get("dp") < 1.02, "DP should be near-useless: {}", get("dp"));
    }
}
