//! Fig 4: fraction of execution cycles spent serving iSTLB accesses.
//!
//! The paper measures 6.6–11.7 % across the QMM workloads, above VTune's
//! 5 % bottleneck threshold — the quantitative case that instruction
//! address translation is a first-order problem.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::{baseline_spec, render_table, Runner, Scale};

/// One workload's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranslationCycleRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of cycles stalled on instruction address translation.
    pub cycle_fraction: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig04Result {
    /// Per-workload rows.
    pub rows: Vec<TranslationCycleRow>,
    /// VTune's bottleneck threshold (5 %), for reference.
    pub threshold: f64,
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig04Result {
    let suite = scale.suite();
    let specs: Vec<_> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    let rows = runner
        .run_batch(&specs)
        .iter()
        .zip(&suite)
        .map(|(record, cfg)| TranslationCycleRow {
            workload: cfg.name.clone(),
            cycle_fraction: record.metrics.istlb_cycle_fraction(),
        })
        .collect();
    Fig04Result {
        rows,
        threshold: 0.05,
    }
}

impl Fig04Result {
    /// Number of workloads above the bottleneck threshold.
    pub fn above_threshold(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.cycle_fraction > self.threshold)
            .count()
    }
}

impl fmt::Display for Fig04Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, String)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.workload.clone(),
                    format!("{:.1}%", r.cycle_fraction * 100.0),
                )
            })
            .collect();
        writeln!(
            f,
            "{}({} of {} above the 5% VTune threshold)",
            render_table(
                "Fig 4: cycles serving iSTLB accesses",
                ("workload", "% of cycles"),
                &rows
            ),
            self.above_threshold(),
            self.rows.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_a_bottleneck() {
        let r = run(&Runner::new(2), &Scale::test());
        assert_eq!(r.rows.len(), Scale::test().workloads);
        assert_eq!(
            r.above_threshold(),
            r.rows.len(),
            "all QMM workloads exceed 5%: {r}"
        );
        for row in &r.rows {
            assert!(
                row.cycle_fraction < 0.3,
                "implausible stall share {}",
                row.cycle_fraction
            );
        }
    }
}
