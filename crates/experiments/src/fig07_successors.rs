//! Fig 7: breakdown of instruction pages by number of distinct successor
//! pages in the iSTLB miss stream.
//!
//! Finding 3's precondition: a large fraction of pages has only 1–2
//! successors, sizeable fractions have up to 4 and up to 8, and few have
//! more — which is exactly why IRIP's ensemble dedicates most capacity to
//! narrow entries (PRT-S1/S2) and only 64 entries to PRT-S8.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::{suite_miss_streams, Runner, Scale};

/// Bucket labels in figure order.
pub const BUCKETS: [&str; 5] = ["1", "2", "3-4", "5-8", ">8"];

/// The figure's data: suite-mean fraction of pages per successor bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig07Result {
    /// Fractions parallel to [`BUCKETS`]; sums to 1.
    pub fractions: [f64; 5],
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig07Result {
    let streams = suite_miss_streams(runner, scale);
    let mut acc = [0.0f64; 5];
    for (_, stream) in &streams {
        let b = stream.successor_breakdown();
        for i in 0..5 {
            acc[i] += b[i];
        }
    }
    for v in &mut acc {
        *v /= streams.len() as f64;
    }
    Fig07Result { fractions: acc }
}

impl fmt::Display for Fig07Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 7: pages by successor count")?;
        for (label, frac) in BUCKETS.iter().zip(&self.fractions) {
            writeln!(f, "{label:<4} successors: {:.1}%", frac * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_spread_matches_finding_3() {
        let r = run(&Runner::new(2), &Scale::test());
        let total: f64 = r.fractions.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "fractions must sum to 1: {total}"
        );
        // Pages with 1–2 successors form a large group...
        assert!(r.fractions[0] + r.fractions[1] > 0.25, "{:?}", r.fractions);
        // ...and pages with more than 8 are a small minority.
        assert!(r.fractions[4] < 0.35, "{:?}", r.fractions);
    }
}
