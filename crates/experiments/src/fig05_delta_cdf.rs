//! Fig 5: accumulative distribution of deltas between pages producing
//! consecutive iSTLB misses.
//!
//! Finding 1: limited spatial locality — small deltas (1–10) account for a
//! noticeable minority (~19 %) of consecutive-miss deltas, while the rest
//! of the distribution is wide.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::{suite_miss_streams, Runner, Scale};

/// Delta bounds the CDF is evaluated at.
pub const BOUNDS: [u64; 8] = [1, 2, 5, 10, 50, 100, 1000, 10000];

/// The figure's data: the suite-mean cumulative fraction at each bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig05Result {
    /// Mean cumulative fraction of deltas ≤ `BOUNDS[i]`.
    pub cdf: Vec<f64>,
}

impl Fig05Result {
    /// Cumulative fraction at delta ≤ 10 (the paper quotes ~19 %).
    pub fn small_delta_fraction(&self) -> f64 {
        self.cdf[BOUNDS.iter().position(|&b| b == 10).expect("10 is a bound")]
    }
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig05Result {
    let streams = suite_miss_streams(runner, scale);
    let mut acc = vec![0.0; BOUNDS.len()];
    for (_, stream) in &streams {
        for (i, v) in stream.delta_cdf(&BOUNDS).into_iter().enumerate() {
            acc[i] += v;
        }
    }
    for v in &mut acc {
        *v /= streams.len() as f64;
    }
    Fig05Result { cdf: acc }
}

impl fmt::Display for Fig05Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 5: CDF of consecutive-miss deltas")?;
        for (bound, frac) in BOUNDS.iter().zip(&self.cdf) {
            writeln!(f, "delta <= {bound:<6}  {:.1}%", frac * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_shape_matches_finding_1() {
        let r = run(&Runner::new(2), &Scale::test());
        assert!(
            r.cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "CDF must be monotone: {r:?}"
        );
        let small = r.small_delta_fraction();
        // The paper's ~19 %; accept a band around it.
        assert!(
            (0.05..0.55).contains(&small),
            "small-delta fraction {small}"
        );
        // The distribution must be wide: plenty of mass beyond delta 100.
        assert!(r.cdf.last().expect("non-empty") - r.cdf[5] > 0.05, "{r:?}");
    }
}
