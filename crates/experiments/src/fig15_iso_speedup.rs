//! Fig 15 (§6.2): ISO-storage performance comparison — Morrigan vs the
//! prior dSTLB prefetchers, all at Morrigan's 3.76 KB budget.
//!
//! The paper: SP +1.6 %, DP +0.1 %, ASP +0.4 %, MP +0.7 %, Morrigan
//! +7.6 %. The shape that must hold here: Morrigan clearly wins; SP is
//! the best of the rest; ASP/DP/MP are near zero.

use std::fmt;

use morrigan_types::stats::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::common::{
    baseline_spec, render_table, server_spec, PrefetcherKind, RunSpec, Runner, Scale,
};

/// One prefetcher's aggregate result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsoRow {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Geometric-mean speedup over the no-prefetching baseline.
    pub geomean_speedup: f64,
    /// Mean miss coverage.
    pub mean_coverage: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Result {
    /// Rows in comparison order (SP, DP-iso, ASP-iso, MP-iso, Morrigan).
    pub rows: Vec<IsoRow>,
}

impl Fig15Result {
    /// The row named `name`, if present.
    pub fn row(&self, name: &str) -> Option<&IsoRow> {
        self.rows.iter().find(|r| r.prefetcher == name)
    }
}

/// The competitors of the ISO comparison, in figure order.
pub const KINDS: [PrefetcherKind; 5] = [
    PrefetcherKind::Sp,
    PrefetcherKind::DpIso,
    PrefetcherKind::AspIso,
    PrefetcherKind::MpIso,
    PrefetcherKind::Morrigan,
];

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig15Result {
    let suite = scale.suite();
    let n = suite.len();

    // One batch: baselines, then each competitor's sweep.
    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    for kind in KINDS {
        specs.extend(suite.iter().map(|cfg| server_spec(cfg, scale, kind)));
    }
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    let rows = KINDS
        .iter()
        .enumerate()
        .map(|(k, kind)| {
            let chunk = &records[n * (k + 1)..n * (k + 2)];
            let speedups: Vec<f64> = chunk
                .iter()
                .zip(baselines)
                .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
                .collect();
            let coverages: Vec<f64> = chunk
                .iter()
                .map(|record| record.metrics.coverage())
                .collect();
            IsoRow {
                prefetcher: kind.name().to_string(),
                geomean_speedup: geometric_mean(&speedups),
                mean_coverage: mean(&coverages),
            }
        })
        .collect();
    Fig15Result { rows }
}

impl fmt::Display for Fig15Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, String)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.prefetcher.clone(),
                    format!(
                        "{:+.2}%  (coverage {:.1}%)",
                        (r.geomean_speedup - 1.0) * 100.0,
                        r.mean_coverage * 100.0
                    ),
                )
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Fig 15: ISO-storage comparison (3.76 KB)",
                ("prefetcher", "speedup"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn morrigan_wins_the_iso_comparison() {
        let r = run(&Runner::new(4), &Scale::test_long());
        let morrigan = r.row("morrigan").expect("morrigan row");
        for row in &r.rows {
            if row.prefetcher != "morrigan" {
                assert!(
                    morrigan.geomean_speedup >= row.geomean_speedup - 0.004,
                    "morrigan must win (within run noise): {:?} vs {row:?}",
                    morrigan
                );
                assert!(
                    morrigan.mean_coverage > row.mean_coverage,
                    "morrigan must cover the most misses"
                );
            }
        }
        assert!(
            morrigan.geomean_speedup > 1.005,
            "morrigan gains: {morrigan:?}"
        );
    }
}
