//! Fig 21 (extension): Morrigan on the N-core machine.
//!
//! The paper evaluates one core; this figure family asks how its result
//! survives multi-core, multi-process reality. Each row runs a machine
//! of N cores — every core time-sharing a mix of QMM tenants in distinct
//! ASID-fused address spaces — under the contended topology: one shared
//! sharded LLC, one machine-wide STLB all cores compete for, and
//! periodic TLB-shootdown traffic from each core's unmap schedule. Rows
//! sweep the core count (1/2/4/8, bounded by `Scale::cores`) crossed
//! with the tenant mix (solo vs. `Scale::tenants` tenants per core).
//!
//! Reported per row: aggregate IPC (summed instructions over makespan
//! cycles) for the baseline and Morrigan, the speedup, Morrigan's
//! aggregate coverage, the per-core IPC spread (load balance), and the
//! machine's shootdown ledger.

use std::fmt;

use morrigan_sim::{SystemConfig, TopologyConfig};
use serde::{Deserialize, Serialize};

use crate::common::{PrefetcherKind, RunSpec, Runner, Scale};

/// Context-switch quantum for every tenant mix, in instructions: long
/// enough that a tenant warms its working set, short enough that each
/// core switches many times per measurement window.
pub const SCHEDULE_QUANTUM: u64 = 50_000;

/// Per-core shootdown interval, in retired instructions.
pub const SHOOTDOWN_INTERVAL: u64 = 100_000;

/// One (core count, tenant count) point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig21Row {
    /// Cores in the machine.
    pub cores: usize,
    /// Tenants per core.
    pub tenants: usize,
    /// Aggregate IPC without prefetching.
    pub baseline_ipc: f64,
    /// Aggregate IPC with one Morrigan instance per core.
    pub morrigan_ipc: f64,
    /// `morrigan_ipc / baseline_ipc`.
    pub speedup: f64,
    /// Morrigan's aggregate iSTLB miss coverage.
    pub coverage: f64,
    /// Slowest core's IPC over fastest core's IPC in the Morrigan run
    /// (1.0 = perfectly balanced).
    pub balance: f64,
    /// Shootdowns issued machine-wide during the Morrigan run.
    pub shootdowns_issued: u64,
}

/// The figure's data: one row per swept (cores, tenants) machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig21Result {
    /// Rows in (tenants, cores) order.
    pub rows: Vec<Fig21Row>,
}

/// Core counts swept: powers of two up to and including `max`.
pub fn core_sweep(max: usize) -> Vec<usize> {
    (0..)
        .map(|p| 1usize << p)
        .take_while(|&c| c <= max)
        .collect()
}

/// The contended machine topology a row runs under.
fn topology(cores: usize) -> TopologyConfig {
    TopologyConfig {
        cores,
        shared_stlb: true,
        llc_shards: 4,
        shootdown_interval: Some(SHOOTDOWN_INTERVAL),
    }
}

fn machine_spec(
    cores: usize,
    tenants: usize,
    scale: &Scale,
    prefetcher: PrefetcherKind,
) -> RunSpec {
    let system = SystemConfig {
        topology: topology(cores),
        ..SystemConfig::default()
    };
    RunSpec::multi(
        morrigan_workloads::suites::tenant_mixes(cores, tenants),
        SCHEDULE_QUANTUM,
        system,
        scale.sim(),
        prefetcher,
    )
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig21Result {
    let cores = core_sweep(scale.cores);
    let tenant_counts: Vec<usize> = if scale.tenants > 1 {
        vec![1, scale.tenants]
    } else {
        vec![1]
    };

    let mut specs = Vec::new();
    for &t in &tenant_counts {
        for &c in &cores {
            specs.push(machine_spec(c, t, scale, PrefetcherKind::None));
            specs.push(machine_spec(c, t, scale, PrefetcherKind::Morrigan));
        }
    }
    let records = runner.run_batch(&specs);

    let mut rows = Vec::new();
    let mut it = records.iter();
    for &t in &tenant_counts {
        for &c in &cores {
            let base = it.next().expect("batch is (base, morrigan) per point");
            let morr = it.next().expect("batch is (base, morrigan) per point");
            let summary = morr
                .machine
                .as_ref()
                .expect("multi records carry a machine summary");
            let per_core_ipc: Vec<f64> = summary.per_core.iter().map(|m| m.ipc()).collect();
            let fastest = per_core_ipc.iter().cloned().fold(f64::MIN, f64::max);
            let slowest = per_core_ipc.iter().cloned().fold(f64::MAX, f64::min);
            rows.push(Fig21Row {
                cores: c,
                tenants: t,
                baseline_ipc: base.metrics.ipc(),
                morrigan_ipc: morr.metrics.ipc(),
                speedup: morr.metrics.speedup_over(&base.metrics),
                coverage: morr.metrics.coverage(),
                balance: slowest / fastest,
                shootdowns_issued: summary.shootdowns_issued,
            });
        }
    }
    Fig21Result { rows }
}

impl fmt::Display for Fig21Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 21: Morrigan vs core count and tenant mix")?;
        writeln!(
            f,
            "{:>5} {:>7} {:>9} {:>9} {:>8} {:>9} {:>8} {:>11}",
            "cores",
            "tenants",
            "base-ipc",
            "morr-ipc",
            "speedup",
            "coverage",
            "balance",
            "shootdowns"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>5} {:>7} {:>9.3} {:>9.3} {:>+7.2}% {:>8.1}% {:>8.2} {:>11}",
                r.cores,
                r.tenants,
                r.baseline_ipc,
                r.morrigan_ipc,
                (r.speedup - 1.0) * 100.0,
                r.coverage * 100.0,
                r.balance,
                r.shootdowns_issued,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sweep_is_powers_of_two() {
        assert_eq!(core_sweep(1), vec![1]);
        assert_eq!(core_sweep(4), vec![1, 2, 4]);
        assert_eq!(core_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(core_sweep(6), vec![1, 2, 4]);
    }

    #[test]
    fn multicore_rows_are_sane() {
        let scale = Scale::test();
        let r = run(&Runner::new(4), &scale);
        assert_eq!(r.rows.len(), core_sweep(scale.cores).len() * 2);
        for row in &r.rows {
            assert!(row.baseline_ipc > 0.0, "{row:?}");
            assert!(row.morrigan_ipc > 0.0, "{row:?}");
            assert!((0.0..=1.0).contains(&row.coverage), "{row:?}");
            assert!(
                row.balance > 0.0 && row.balance <= 1.0 + 1e-9,
                "balance is slowest/fastest: {row:?}"
            );
            assert!(
                row.shootdowns_issued > 0,
                "the unmap schedule must fire at test scale: {row:?}"
            );
        }
        // Solo rows precede multi-tenant rows; same core counts in each.
        let solo = &r.rows[..r.rows.len() / 2];
        assert!(solo.iter().all(|row| row.tenants == 1));
    }
}
