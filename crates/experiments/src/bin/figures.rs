//! Regenerates the paper's figures as text tables.
//!
//! Usage:
//!
//! ```text
//! figures                         # run everything at the default scale
//! figures fig15 fig16             # run a subset
//! figures --json out.json fig15   # also write machine-readable records
//! figures --trace t.json fig02    # also write an event trace (Perfetto)
//! figures --explain why.json fig02  # per-run "why" report (+ .md sibling)
//! figures explain a.json b.json   # differential between two --json dumps
//! MORRIGAN_DIGEST=1 figures       # one-line top-insight digest per figure
//! figures --interval 10000 ...    # per-epoch time-series in the JSON
//! figures --sample 10000:40000 .. # SMARTS sampled simulation (or --sample 1)
//! MORRIGAN_FULL=1 figures         # paper-scale run lengths (slow)
//! MORRIGAN_THREADS=4 figures      # worker-pool size override
//! figures --machine-threads 4     # host threads per multi-core machine
//! MORRIGAN_MACHINE_THREADS=4 figures  # --machine-threads via the environment
//! MORRIGAN_VERBOSE=1 figures      # per-simulation progress on stderr
//! MORRIGAN_TRACE=t.json figures   # --trace via the environment
//! MORRIGAN_INTERVAL=10000 figures # --interval via the environment
//! MORRIGAN_SAMPLE=10000:40000 figures  # --sample via the environment
//! figures --no-workload-cache     # force live workload generation
//! MORRIGAN_WORKLOAD_CACHE=dir figures  # persist workload traces on disk
//! ```
//!
//! All figures share one [`Runner`], so simulations they have in common
//! (notably the no-prefetch baselines and the Fig 5–8 miss-stream runs)
//! are executed once and served from the result cache afterwards.
//!
//! `--trace` re-executes the *first* record of the first figure run with
//! a ring-buffer event recorder attached and writes the capture in the
//! format the extension selects: `.json` for Chrome `trace_event` (open
//! in Perfetto / `chrome://tracing`), `.jsonl` for flat JSON-lines. The
//! traced run is asserted bitwise-identical to the untraced one.
//!
//! `--explain` likewise re-executes the first record, but streams every
//! event through the analysis engine and writes a structured per-run
//! diagnosis (miss anatomy, per-component attribution, replacement
//! forensics, reconciliation laws) as JSON at the given path plus a
//! human-facing markdown sibling. `figures explain a.json b.json`
//! instead reads two previously written `--json` dumps and emits a
//! differential report decomposing the metric deltas along the audit
//! conservation laws.

use std::process::ExitCode;
use std::sync::Arc;

use morrigan_experiments as exp;
use morrigan_experiments::{RunRecord, Runner, Scale};
use morrigan_obs::{to_chrome_trace, to_jsonl, DEFAULT_TRACE_CAPACITY};

/// Every figure name the binary accepts, in run order.
const FIGURES: [&str; 19] = [
    "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "tuning",
];

/// Levenshtein edit distance, for the "did you mean" hint.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn closest_figure(name: &str) -> &'static str {
    FIGURES
        .iter()
        .min_by_key(|candidate| edit_distance(name, candidate))
        .expect("FIGURES is non-empty")
}

/// Every flag the binary accepts, for the "did you mean" hint on
/// unknown `--…` arguments.
const FLAGS: [&str; 12] = [
    "--json",
    "--trace",
    "--explain",
    "--out",
    "--interval",
    "--sample",
    "--cores",
    "--tenants",
    "--machine-threads",
    "--no-workload-cache",
    "--help",
    "-h",
];

fn closest_flag(arg: &str) -> &'static str {
    FLAGS
        .iter()
        .min_by_key(|candidate| edit_distance(arg, candidate))
        .expect("FLAGS is non-empty")
}

/// The export format `--trace` selects, by file extension.
enum TraceFormat {
    /// `.json`: Chrome `trace_event` — loads in Perfetto.
    Chrome,
    /// `.jsonl`: one flat JSON object per event.
    Jsonl,
}

/// Resolves the trace format from the requested path's extension.
fn trace_format(path: &str) -> Result<TraceFormat, String> {
    if path.ends_with(".jsonl") {
        Ok(TraceFormat::Jsonl)
    } else if path.ends_with(".json") {
        Ok(TraceFormat::Chrome)
    } else {
        Err(format!(
            "--trace path '{path}' must end in .json (Chrome trace_event, for Perfetto) \
             or .jsonl (flat JSON lines)"
        ))
    }
}

/// Parses a `--cores` value: the largest core count Fig 21's machine
/// sweep reaches. Must be a power of two in 1..=64 (the sweep is the
/// powers of two up to it, matching the paper-extension's 1/2/4/8).
fn parse_cores(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n.is_power_of_two() && n <= 64 => Ok(n),
        _ => Err(format!(
            "--cores requires a power of two in 1..=64 (the sweep runs 1, 2, 4, … up to it), \
             got '{value}'"
        )),
    }
}

/// Parses a `--tenants` value: tenants per core in Fig 21's
/// multi-tenant rows, a positive integer up to 8.
fn parse_tenants(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if (1..=8).contains(&n) => Ok(n),
        _ => Err(format!(
            "--tenants requires an integer in 1..=8 (tenants per core), got '{value}'"
        )),
    }
}

/// Parses a `--machine-threads` value: the host-thread budget each
/// multi-core machine's epoch driver may use, a positive integer.
fn parse_machine_threads(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "--machine-threads requires a positive thread count, got '{value}'"
        )),
        Ok(n) => Ok(n),
    }
}

/// Parses an `--interval` value: a positive integer epoch length.
fn parse_interval(value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(0) | Err(_) => Err(format!(
            "--interval requires a positive integer (retired instructions per epoch), \
             got '{value}'"
        )),
        Ok(n) => Ok(n),
    }
}

/// Parses a `--sample` value: `1` for the default schedule, otherwise
/// the `detail:skip` notation.
fn parse_sample(value: &str) -> Result<morrigan_sim::SamplingConfig, String> {
    let value = value.trim();
    if value == "1" {
        return Ok(morrigan_sim::SamplingConfig::default_schedule());
    }
    morrigan_sim::SamplingConfig::parse(value).map_err(|e| format!("--sample: {e}"))
}

struct Args {
    /// Figure names to run (empty = all).
    selected: Vec<String>,
    /// Where to write the per-figure JSON document, if requested.
    json_path: Option<String>,
    /// Where to write the event trace of the first record, if requested
    /// (`--trace`, or `MORRIGAN_TRACE` when the flag is absent).
    trace_path: Option<String>,
    /// Where to write the analysis report of the first record
    /// (`--explain`; a markdown sibling is written next to it).
    explain_path: Option<String>,
    /// Interval-sampler epoch length (`--interval`; `MORRIGAN_INTERVAL`
    /// is handled by [`Runner::from_env`] when the flag is absent).
    interval: Option<u64>,
    /// SMARTS sampled-simulation schedule (`--sample`; `MORRIGAN_SAMPLE`
    /// is handled by [`Runner::from_env`] when the flag is absent).
    sample: Option<morrigan_sim::SamplingConfig>,
    /// Fig 21 sweep ceiling (`--cores`; `MORRIGAN_CORES` when absent).
    cores: Option<usize>,
    /// Fig 21 tenants per core (`--tenants`; `MORRIGAN_TENANTS` when
    /// absent).
    tenants: Option<usize>,
    /// Per-machine host-thread budget (`--machine-threads`;
    /// `MORRIGAN_MACHINE_THREADS` is handled by [`Runner::from_env`]
    /// when the flag is absent). Never changes results, only wall time.
    machine_threads: Option<usize>,
    /// `--no-workload-cache`: force live workload generation, bypassing
    /// the materialized-trace cache (`MORRIGAN_NO_WORKLOAD_CACHE=1` is
    /// the env equivalent, handled by [`Runner::from_env`]).
    no_workload_cache: bool,
    /// `--help` was requested: print usage and exit successfully.
    help: bool,
}

fn usage() -> String {
    format!(
        "usage: figures [--json <path>] [--trace <path>.json|.jsonl] [--explain <path>.json] \
         [--interval <n>] [--sample <detail:skip|1>] [--cores <1|2|4|8|…>] [--tenants <n>] \
         [--machine-threads <n>] [--no-workload-cache] [{}]...\n\
         \x20      figures explain <a.json> <b.json> [--out <path>]",
        FIGURES.join("|")
    )
}

fn parse_args() -> Result<Args, String> {
    let mut selected = Vec::new();
    let mut json_path = None;
    let mut trace_path = None;
    let mut explain_path = None;
    let mut interval = None;
    let mut sample = None;
    let mut cores = None;
    let mut tenants = None;
    let mut machine_threads = None;
    let mut no_workload_cache = false;
    let mut help = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(
                    args.next()
                        .ok_or_else(|| "--json requires a file path".to_string())?,
                );
            }
            "--trace" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--trace requires a file path".to_string())?;
                trace_format(&path)?;
                trace_path = Some(path);
            }
            "--explain" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--explain requires a file path".to_string())?;
                if !path.ends_with(".json") {
                    return Err(format!(
                        "--explain path '{path}' must end in .json (the report is JSON; \
                         a markdown sibling is written next to it)"
                    ));
                }
                explain_path = Some(path);
            }
            "--interval" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--interval requires an epoch length".to_string())?;
                interval = Some(parse_interval(&value)?);
            }
            "--sample" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--sample requires a detail:skip schedule".to_string())?;
                sample = Some(parse_sample(&value)?);
            }
            "--cores" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--cores requires a core count".to_string())?;
                cores = Some(parse_cores(&value)?);
            }
            "--tenants" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--tenants requires a tenant count".to_string())?;
                tenants = Some(parse_tenants(&value)?);
            }
            "--machine-threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--machine-threads requires a thread count".to_string())?;
                machine_threads = Some(parse_machine_threads(&value)?);
            }
            "--no-workload-cache" => no_workload_cache = true,
            "--help" | "-h" => help = true,
            name if FIGURES.contains(&name) => selected.push(arg),
            unknown if unknown.starts_with('-') => {
                return Err(format!(
                    "unknown flag '{unknown}' — did you mean '{}'?\n{}",
                    closest_flag(unknown),
                    usage()
                ));
            }
            unknown => {
                return Err(format!(
                    "unknown figure '{unknown}' — did you mean '{}'?\nknown figures: {}",
                    closest_figure(unknown),
                    FIGURES.join(" ")
                ));
            }
        }
    }
    if trace_path.is_none() {
        if let Ok(path) = std::env::var("MORRIGAN_TRACE") {
            if !path.is_empty() {
                trace_format(&path)?;
                trace_path = Some(path);
            }
        }
    }
    // Sampling is incompatible with the other telemetry modes: the
    // interval time-series would mix estimated and measured epochs, and
    // a sampled trace would silently omit the fast-forwarded stretches.
    if sample.is_some() && interval.is_some() {
        return Err(
            "--sample and --interval are mutually exclusive: interval epochs assume full \
             detailed timing"
                .to_string(),
        );
    }
    if sample.is_some() && trace_path.is_some() {
        return Err(
            "--sample and --trace are mutually exclusive: an event trace of a sampled run \
             would omit the fast-forwarded stretches"
                .to_string(),
        );
    }
    if sample.is_some() && explain_path.is_some() {
        return Err(
            "--sample and --explain are mutually exclusive: an analysis of a sampled run \
             would omit the fast-forwarded stretches"
                .to_string(),
        );
    }
    Ok(Args {
        selected,
        json_path,
        trace_path,
        explain_path,
        interval,
        sample,
        cores,
        tenants,
        machine_threads,
        no_workload_cache,
        help,
    })
}

fn main() -> ExitCode {
    // `figures explain a.json b.json [--out <path>]` is a subcommand:
    // it reads records back instead of running simulations.
    if std::env::args().nth(1).as_deref() == Some("explain") {
        return match run_explain(std::env::args().skip(2).collect()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let mut scale = Scale::from_env();
    if let Some(cores) = args.cores {
        scale.cores = cores;
    }
    if let Some(tenants) = args.tenants {
        scale.tenants = tenants;
    }
    let mut runner = Runner::from_env();
    if args.interval.is_some() {
        // An explicit --interval overrides any MORRIGAN_SAMPLE default
        // (the two modes are mutually exclusive at the runner).
        runner = runner.with_sampling(None).with_interval(args.interval);
    }
    if args.sample.is_some() {
        runner = runner.with_interval(None).with_sampling(args.sample);
    }
    if args.machine_threads.is_some() {
        runner = runner.with_machine_threads(args.machine_threads);
    }
    if args.no_workload_cache {
        runner = runner.with_workload_cache(morrigan_runner::WorkloadCache::disabled());
    }
    // --sample may also arrive via MORRIGAN_SAMPLE, which parse_args
    // cannot see; re-check the trace/explain exclusions against the
    // runner.
    if (args.trace_path.is_some() || args.explain_path.is_some()) && runner.sampling().is_some() {
        eprintln!(
            "--trace/--explain and sampled simulation (--sample / MORRIGAN_SAMPLE) are mutually \
             exclusive: telemetry of a sampled run would omit the fast-forwarded stretches"
        );
        return ExitCode::FAILURE;
    }
    let digest = std::env::var("MORRIGAN_DIGEST").is_ok_and(|v| v == "1");
    let want = |name: &str| args.selected.is_empty() || args.selected.iter().any(|a| a == name);
    eprintln!(
        "scale: {} warmup + {} measured instructions, {} workloads, {} SMT pairs ({} worker threads)",
        scale.warmup,
        scale.measure,
        scale.workloads,
        scale.smt_pairs,
        runner.threads()
    );

    // Per-figure journal slices for the JSON document: the runner
    // journals every record in batch order, so the records a figure
    // caused (fresh or cached) are exactly those past its watermark.
    let mut json_figures: Vec<(String, Vec<Arc<RunRecord>>)> = Vec::new();

    macro_rules! figure {
        ($name:literal, $module:ident) => {
            if want($name) {
                eprintln!("running {}...", $name);
                let watermark = runner.journal_len();
                println!("{}\n", exp::$module::run(&runner, &scale));
                if digest {
                    eprintln!("digest {}: {}", $name, figure_digest(&runner, watermark));
                }
                if args.json_path.is_some() {
                    json_figures.push(($name.to_string(), runner.journal_since(watermark)));
                }
            }
        };
    }

    figure!("fig02", fig02_java_mpki);
    figure!("fig03", fig03_frontend_mpki);
    figure!("fig04", fig04_translation_cycles);
    figure!("fig05", fig05_delta_cdf);
    figure!("fig06", fig06_page_skew);
    figure!("fig07", fig07_successors);
    figure!("fig08", fig08_successor_prob);
    figure!("fig09", fig09_dstlb_on_istlb);
    figure!("fig10", fig10_fnlmma_tlb);
    figure!("fig13", fig13_coverage_budget);
    figure!("fig14", fig14_replacement);
    figure!("fig15", fig15_iso_speedup);
    figure!("fig16", fig16_walk_refs);
    figure!("fig17", fig17_mono);
    figure!("fig18", fig18_other_approaches);
    figure!("fig19", fig19_icache_synergy);
    figure!("fig20", fig20_smt);
    figure!("fig21", fig21_multicore);
    figure!("tuning", tuning);

    let workload_stats = runner.workload_cache_stats();
    eprintln!(
        "{} simulations executed, {} served from the record cache; \
         {} distinct workloads materialized ({} from disk) serving {} streams, \
         ~{:.2}s of workload generation saved",
        runner.sims_executed(),
        runner.cache_hits(),
        workload_stats.built + workload_stats.loaded_from_disk,
        workload_stats.loaded_from_disk,
        workload_stats.streams_served,
        workload_stats.saved_seconds,
    );

    if let Some(path) = &args.json_path {
        let document = morrigan_runner::json::figures_document(&json_figures);
        if let Err(error) = std::fs::write(path, document) {
            eprintln!("failed to write {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.trace_path {
        if let Err(message) = write_trace(&runner, path) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.explain_path {
        if let Err(message) = write_explain(&runner, path) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}

/// One-line top insight for the records a figure just journaled
/// (`MORRIGAN_DIGEST=1`). Counter-based — no re-execution: single-core
/// figures contrast the baseline against the best prefetcher record of
/// the same workload; multi-core figures report the worst interference
/// core via the machine analysis.
fn figure_digest(runner: &Runner, watermark: usize) -> String {
    let records = runner.journal_since(watermark);
    if records.is_empty() {
        return "no simulations ran (all cached upstream of this figure)".to_string();
    }
    // Prefer the widest machine record: a 1-core machine's
    // interference attribution is trivially "core 0 bears 100%".
    if let Some(machine) = records
        .iter()
        .filter(|r| r.machine.is_some())
        .max_by_key(|r| r.machine.as_ref().map_or(0, |m| m.cores))
    {
        return morrigan_runner::AnalysisReport::from_machine(machine).digest();
    }
    let baseline = records
        .iter()
        .find(|r| r.spec.prefetcher.name() == "baseline");
    let best = records
        .iter()
        .filter(|r| r.spec.prefetcher.name() != "baseline")
        .max_by(|a, b| {
            a.metrics
                .coverage()
                .total_cmp(&b.metrics.coverage())
                .then(a.metrics.ipc().total_cmp(&b.metrics.ipc()))
        });
    match (baseline, best) {
        (Some(base), Some(best)) => format!(
            "{} / {} covers {:.0}% of iSTLB misses (mpki {:.2} → {:.2} walked, \
             speedup {:.3}x over baseline)",
            best.spec.workload.name(),
            best.spec.prefetcher.name(),
            best.metrics.coverage() * 100.0,
            base.metrics.istlb_mpki(),
            best.metrics.istlb_mpki() * (1.0 - best.metrics.coverage()),
            best.metrics.speedup_over(&base.metrics),
        ),
        _ => {
            let r = &records[0];
            format!(
                "{} / {}: ipc {:.3}, istlb mpki {:.2}, coverage {:.0}% ({} records)",
                r.spec.workload.name(),
                r.spec.prefetcher.name(),
                r.metrics.ipc(),
                r.metrics.istlb_mpki(),
                r.metrics.coverage() * 100.0,
                records.len()
            )
        }
    }
}

/// Re-executes the first journaled record's spec with the streaming
/// analysis engine attached and writes the diagnosis to `path` (JSON)
/// plus a markdown sibling. The analyzed run is asserted bitwise-equal
/// to the journaled one, and the report must reconcile: every law ties
/// an event-derived number to its audited counter.
fn write_explain(runner: &Runner, path: &str) -> Result<(), String> {
    let first = runner
        .journal_since(0)
        .into_iter()
        .next()
        .ok_or_else(|| "--explain: no simulation ran, nothing to analyze".to_string())?;
    eprintln!(
        "analyzing {} / {}...",
        first.spec.workload.name(),
        first.spec.prefetcher.name()
    );
    let record = first.spec.execute_analyzed(runner.interval());
    assert_eq!(
        record.metrics, first.metrics,
        "analysis must not perturb the simulation"
    );
    let report = record
        .analysis
        .as_ref()
        .expect("execute_analyzed always attaches a report");
    if !report.complete {
        eprintln!(
            "--explain: WARNING: {} events were dropped upstream; the report refuses to \
             claim completeness (\"complete\": false)",
            report.dropped_events
        );
    }
    if !report.reconciles() {
        return Err(format!(
            "--explain: report does not reconcile with the audited counters: {:?}",
            report
                .laws
                .iter()
                .filter(|l| !l.ok())
                .map(|l| l.law.as_str())
                .collect::<Vec<_>>()
        ));
    }
    let md_path = format!("{}.md", path.trim_end_matches(".json"));
    std::fs::write(path, format!("{}\n", report.to_json()))
        .map_err(|error| format!("failed to write {path}: {error}"))?;
    std::fs::write(&md_path, report.to_markdown())
        .map_err(|error| format!("failed to write {md_path}: {error}"))?;
    eprintln!(
        "wrote {path} and {md_path} ({} events analyzed, {} dropped, {} laws reconciled)",
        report.events_seen,
        report.dropped_events,
        report.laws.len()
    );
    Ok(())
}

/// The `figures explain <a.json> <b.json> [--out <path>]` subcommand:
/// reads two `--json` dumps (or `--explain` reports' record dumps) back
/// and writes a differential report decomposing the metric deltas along
/// the audit conservation laws.
fn run_explain(argv: Vec<String>) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut out = None;
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    iter.next()
                        .ok_or_else(|| "explain: --out requires a file path".to_string())?,
                );
            }
            unknown if unknown.starts_with('-') => {
                return Err(format!("explain: unknown flag '{unknown}'\n{}", usage()));
            }
            _ => paths.push(arg),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        return Err(format!(
            "explain requires exactly two record dumps (got {}): \
             figures explain <a.json> <b.json> [--out <path>]",
            paths.len()
        ));
    };
    let digest_of = |path: &str| -> Result<morrigan_runner::RecordDigest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|error| format!("explain: failed to read {path}: {error}"))?;
        let doc = morrigan_runner::jsonval::parse(&text)
            .map_err(|error| format!("explain: {path} is not valid JSON: {error}"))?;
        let record = morrigan_runner::first_record(&doc)
            .map_err(|error| format!("explain: {path}: {error}"))?;
        morrigan_runner::digest_record(record).map_err(|error| format!("explain: {path}: {error}"))
    };
    let a = digest_of(a_path)?;
    let b = digest_of(b_path)?;
    let report = morrigan_runner::explain_diff(&a, &b);
    match out {
        Some(out_path) => {
            std::fs::write(&out_path, &report)
                .map_err(|error| format!("explain: failed to write {out_path}: {error}"))?;
            eprintln!("wrote {out_path}");
        }
        None => print!("{report}"),
    }
    Ok(())
}

/// Re-executes the first journaled record's spec with a trace recorder
/// attached and writes the capture to `path` in the extension-selected
/// format. Tracing must not perturb the simulation: the traced metrics
/// are asserted identical to the journaled ones.
fn write_trace(runner: &Runner, path: &str) -> Result<(), String> {
    let first = runner
        .journal_since(0)
        .into_iter()
        .next()
        .ok_or_else(|| "--trace: no simulation ran, nothing to trace".to_string())?;
    if matches!(
        first.spec.workload,
        morrigan_runner::WorkloadSpec::Multi { .. }
    ) {
        return Err(format!(
            "--trace: the first record ({}) is a multi-core machine, which has no event \
             recorder; rerun with a single-core figure (e.g. fig02) listed first",
            first.spec.workload.name()
        ));
    }
    eprintln!(
        "tracing {} / {}...",
        first.spec.workload.name(),
        first.spec.prefetcher.name()
    );
    let (record, trace) = first
        .spec
        .execute_traced(runner.interval(), DEFAULT_TRACE_CAPACITY);
    assert_eq!(
        record.metrics, first.metrics,
        "tracing must not perturb the simulation"
    );
    let rendered = match trace_format(path)? {
        TraceFormat::Chrome => to_chrome_trace(&trace),
        TraceFormat::Jsonl => to_jsonl(&trace),
    };
    std::fs::write(path, rendered).map_err(|error| format!("failed to write {path}: {error}"))?;
    eprintln!(
        "wrote {path} ({} events captured, {} dropped by the ring)",
        trace.len(),
        trace.dropped()
    );
    Ok(())
}
