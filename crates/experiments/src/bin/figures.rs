//! Regenerates the paper's figures as text tables.
//!
//! Usage:
//!
//! ```text
//! figures                 # run everything at the default scale
//! figures fig15 fig16     # run a subset
//! MORRIGAN_FULL=1 figures # paper-scale run lengths (slow)
//! ```

use morrigan_experiments as exp;
use morrigan_experiments::Scale;

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    eprintln!(
        "scale: {} warmup + {} measured instructions, {} workloads, {} SMT pairs",
        scale.warmup, scale.measure, scale.workloads, scale.smt_pairs
    );

    macro_rules! figure {
        ($name:literal, $module:ident) => {
            if want($name) {
                eprintln!("running {}...", $name);
                println!("{}\n", exp::$module::run(&scale));
            }
        };
    }

    figure!("fig02", fig02_java_mpki);
    figure!("fig03", fig03_frontend_mpki);
    figure!("fig04", fig04_translation_cycles);
    figure!("fig05", fig05_delta_cdf);
    figure!("fig06", fig06_page_skew);
    figure!("fig07", fig07_successors);
    figure!("fig08", fig08_successor_prob);
    figure!("fig09", fig09_dstlb_on_istlb);
    figure!("fig10", fig10_fnlmma_tlb);
    figure!("fig13", fig13_coverage_budget);
    figure!("fig14", fig14_replacement);
    figure!("fig15", fig15_iso_speedup);
    figure!("fig16", fig16_walk_refs);
    figure!("fig17", fig17_mono);
    figure!("fig18", fig18_other_approaches);
    figure!("fig19", fig19_icache_synergy);
    figure!("fig20", fig20_smt);
    figure!("tuning", tuning);
}
