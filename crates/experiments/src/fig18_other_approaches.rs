//! Fig 18 (§6.4): Morrigan against other ways of spending the same
//! resources, plus combinations.
//!
//! * **Enlarged STLB** — no prefetching, but the STLB grows by Morrigan's
//!   storage budget (the paper adds 388 entries; we add 384, the nearest
//!   count that keeps a power-of-two set layout at 15 ways × 128 sets).
//! * **P2TLB** — Morrigan prefetching directly into the STLB. The paper
//!   measures a large regression from pollution. (On this substrate the
//!   STLB is not fully saturated, so the pollution is partially masked —
//!   see EXPERIMENTS.md.)
//! * **ASAP** — accelerated page walks without prefetching; limited by
//!   the QMM workloads' high PSC hit rates (~1.4 refs/walk).
//! * **Morrigan + ASAP** — orthogonal mechanisms compose.
//! * **Perfect iSTLB** — the upper bound.

use std::fmt;

use morrigan_sim::SystemConfig;
use morrigan_types::prefetcher::NullPrefetcher;
use morrigan_types::stats::geometric_mean;
use morrigan_vm::{PrefetchPlacement, TlbConfig};
use serde::{Deserialize, Serialize};

use crate::common::{render_table, run_server, suite_baselines, PrefetcherKind, Scale};

/// One approach's aggregate speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproachRow {
    /// Approach name.
    pub approach: String,
    /// Geometric-mean speedup over the plain baseline.
    pub geomean_speedup: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig18Result {
    /// Rows in figure order.
    pub rows: Vec<ApproachRow>,
}

impl Fig18Result {
    /// The speedup of `name`, if present.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.approach == name)
            .map(|r| r.geomean_speedup)
    }
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Fig18Result {
    let baselines = suite_baselines(scale);
    let mut rows = Vec::new();

    let mut measure = |name: &str, system: SystemConfig, kind: Option<PrefetcherKind>| {
        let speedups: Vec<f64> = baselines
            .iter()
            .map(|(cfg, base)| {
                let prefetcher = match kind {
                    Some(k) => k.build(),
                    None => Box::new(NullPrefetcher),
                };
                run_server(cfg, system, scale.sim(), prefetcher).speedup_over(base)
            })
            .collect();
        rows.push(ApproachRow {
            approach: name.to_string(),
            geomean_speedup: geometric_mean(&speedups),
        });
    };

    // Enlarged STLB, no prefetching.
    let mut big_stlb = SystemConfig::default();
    big_stlb.mmu.stlb = TlbConfig {
        entries: 1920,
        ways: 15,
        latency: 8,
    };
    measure("enlarged-stlb", big_stlb, None);

    // Morrigan.
    measure(
        "morrigan",
        SystemConfig::default(),
        Some(PrefetcherKind::Morrigan),
    );

    // P2TLB: Morrigan prefetching straight into the STLB.
    let mut p2tlb = SystemConfig::default();
    p2tlb.mmu.placement = PrefetchPlacement::Stlb;
    measure("p2tlb", p2tlb, Some(PrefetcherKind::Morrigan));

    // ASAP without prefetching.
    let mut asap = SystemConfig::default();
    asap.mmu.walker.asap = true;
    measure("asap", asap, None);

    // Morrigan + ASAP.
    measure("morrigan+asap", asap, Some(PrefetcherKind::Morrigan));

    // Perfect iSTLB.
    let mut perfect = SystemConfig::default();
    perfect.mmu.perfect_istlb = true;
    measure("perfect-istlb", perfect, None);

    Fig18Result { rows }
}

impl fmt::Display for Fig18Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, String)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.approach.clone(),
                    format!("{:+.2}%", (r.geomean_speedup - 1.0) * 100.0),
                )
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Fig 18: comparison with other approaches",
                ("approach", "speedup"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn orderings_match_paper() {
        let r = run(&Scale::test_long());
        let get = |n: &str| r.speedup_of(n).expect(n);
        // Morrigan competes with spending the same storage on STLB
        // capacity. (In the paper Morrigan wins outright; on this
        // synthetic substrate its coverage is attenuated — see
        // EXPERIMENTS.md — so we assert it stays within noise of the
        // enlarged STLB rather than strictly above it.)
        assert!(get("morrigan") > get("enlarged-stlb") - 0.02, "{r}");
        // Prefetching into the STLB pollutes in the paper (−18.9 %). On
        // this substrate the STLB retains some slack, so the pollution is
        // masked by the de-facto larger prefetch buffer; we assert P2TLB
        // gains no *meaningful* edge over the PB design (the deviation is
        // documented in EXPERIMENTS.md).
        assert!(get("p2tlb") <= get("morrigan") + 0.01, "{r}");
        // ASAP alone is limited by PSC hit rates.
        assert!(get("asap") < get("morrigan"), "{r}");
        // The combination improves on Morrigan alone and approaches the
        // ideal.
        assert!(get("morrigan+asap") >= get("morrigan") - 0.002, "{r}");
        assert!(get("perfect-istlb") >= get("morrigan+asap") - 0.01, "{r}");
    }
}
