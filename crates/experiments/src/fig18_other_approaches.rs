//! Fig 18 (§6.4): Morrigan against other ways of spending the same
//! resources, plus combinations.
//!
//! * **Enlarged STLB** — no prefetching, but the STLB grows by Morrigan's
//!   storage budget (the paper adds 388 entries; we add 384, the nearest
//!   count that keeps a power-of-two set layout at 15 ways × 128 sets).
//! * **P2TLB** — Morrigan prefetching directly into the STLB. The paper
//!   measures a large regression from pollution. (On this substrate the
//!   STLB is not fully saturated, so the pollution is partially masked —
//!   see EXPERIMENTS.md.)
//! * **ASAP** — accelerated page walks without prefetching; limited by
//!   the QMM workloads' high PSC hit rates (~1.4 refs/walk).
//! * **Morrigan + ASAP** — orthogonal mechanisms compose.
//! * **Perfect iSTLB** — the upper bound.

use std::fmt;

use morrigan_sim::SystemConfig;
use morrigan_types::stats::geometric_mean;
use morrigan_vm::{PrefetchPlacement, TlbConfig};
use serde::{Deserialize, Serialize};

use crate::common::{baseline_spec, render_table, PrefetcherKind, RunSpec, Runner, Scale};

/// One approach's aggregate speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproachRow {
    /// Approach name.
    pub approach: String,
    /// Geometric-mean speedup over the plain baseline.
    pub geomean_speedup: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig18Result {
    /// Rows in figure order.
    pub rows: Vec<ApproachRow>,
}

impl Fig18Result {
    /// The speedup of `name`, if present.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.approach == name)
            .map(|r| r.geomean_speedup)
    }
}

/// Runs the experiment.
pub fn run(runner: &Runner, scale: &Scale) -> Fig18Result {
    let suite = scale.suite();
    let n = suite.len();

    // Enlarged STLB, no prefetching.
    let mut big_stlb = SystemConfig::default();
    big_stlb.mmu.stlb = TlbConfig {
        entries: 1920,
        ways: 15,
        latency: 8,
    };
    // P2TLB: Morrigan prefetching straight into the STLB.
    let mut p2tlb = SystemConfig::default();
    p2tlb.mmu.placement = PrefetchPlacement::Stlb;
    // ASAP: accelerated page walks.
    let mut asap = SystemConfig::default();
    asap.mmu.walker.asap = true;
    // Perfect iSTLB.
    let mut perfect = SystemConfig::default();
    perfect.mmu.perfect_istlb = true;

    let approaches: Vec<(&str, SystemConfig, PrefetcherKind)> = vec![
        ("enlarged-stlb", big_stlb, PrefetcherKind::None),
        (
            "morrigan",
            SystemConfig::default(),
            PrefetcherKind::Morrigan,
        ),
        ("p2tlb", p2tlb, PrefetcherKind::Morrigan),
        ("asap", asap, PrefetcherKind::None),
        ("morrigan+asap", asap, PrefetcherKind::Morrigan),
        ("perfect-istlb", perfect, PrefetcherKind::None),
    ];

    // One batch: baselines, then each approach's sweep.
    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, scale)).collect();
    for (_, system, kind) in &approaches {
        specs.extend(
            suite
                .iter()
                .map(|cfg| RunSpec::server(cfg, *system, scale.sim(), *kind)),
        );
    }
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    let rows = approaches
        .iter()
        .enumerate()
        .map(|(k, (name, _, _))| {
            let speedups: Vec<f64> = records[n * (k + 1)..n * (k + 2)]
                .iter()
                .zip(baselines)
                .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
                .collect();
            ApproachRow {
                approach: name.to_string(),
                geomean_speedup: geometric_mean(&speedups),
            }
        })
        .collect();

    Fig18Result { rows }
}

impl fmt::Display for Fig18Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<(String, String)> = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.approach.clone(),
                    format!("{:+.2}%", (r.geomean_speedup - 1.0) * 100.0),
                )
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Fig 18: comparison with other approaches",
                ("approach", "speedup"),
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
    fn orderings_match_paper() {
        let r = run(&Runner::new(4), &Scale::test_long());
        let get = |n: &str| r.speedup_of(n).expect(n);
        // Morrigan competes with spending the same storage on STLB
        // capacity. (In the paper Morrigan wins outright; on this
        // synthetic substrate its coverage is attenuated — see
        // EXPERIMENTS.md — so we assert it stays within noise of the
        // enlarged STLB rather than strictly above it.)
        assert!(get("morrigan") > get("enlarged-stlb") - 0.02, "{r}");
        // Prefetching into the STLB pollutes in the paper (−18.9 %). On
        // this substrate the STLB retains some slack, so the pollution is
        // masked by the de-facto larger prefetch buffer; we assert P2TLB
        // gains no *meaningful* edge over the PB design (the deviation is
        // documented in EXPERIMENTS.md).
        assert!(get("p2tlb") <= get("morrigan") + 0.01, "{r}");
        // ASAP alone is limited by PSC hit rates.
        assert!(get("asap") < get("morrigan"), "{r}");
        // The combination improves on Morrigan alone and approaches the
        // ideal.
        assert!(get("morrigan+asap") >= get("morrigan") - 0.002, "{r}");
        assert!(get("perfect-istlb") >= get("morrigan+asap") - 0.01, "{r}");
    }
}
