//! Rendering tests for every figure's `Display` implementation: results
//! are constructed directly (no simulation) so formatting regressions are
//! caught instantly.

use morrigan_experiments::*;

#[test]
fn fig02_renders() {
    let r = fig02_java_mpki::Fig02Result {
        rows: vec![fig02_java_mpki::JavaMpkiRow {
            workload: "cassandra".into(),
            istlb_mpki: 1.5,
        }],
    };
    let text = r.to_string();
    assert!(text.contains("Fig 2"));
    assert!(text.contains("cassandra"));
    assert!(text.contains("1.50"));
}

#[test]
fn fig03_renders() {
    let mk = |v| fig03_frontend_mpki::SuiteMpki {
        l1i: v,
        itlb: v,
        istlb: v,
    };
    let r = fig03_frontend_mpki::Fig03Result {
        spec: mk(0.5),
        qmm: mk(10.0),
    };
    let text = r.to_string();
    assert!(text.contains("SPEC-like"));
    assert!(text.contains("QMM-like"));
    assert!(text.contains("10.00"));
}

#[test]
fn fig04_renders_threshold_summary() {
    let r = fig04_translation_cycles::Fig04Result {
        rows: vec![
            fig04_translation_cycles::TranslationCycleRow {
                workload: "w0".into(),
                cycle_fraction: 0.10,
            },
            fig04_translation_cycles::TranslationCycleRow {
                workload: "w1".into(),
                cycle_fraction: 0.02,
            },
        ],
        threshold: 0.05,
    };
    assert_eq!(r.above_threshold(), 1);
    let text = r.to_string();
    assert!(text.contains("10.0%"));
    assert!(text.contains("(1 of 2 above the 5% VTune threshold)"));
}

#[test]
fn fig05_renders_and_indexes() {
    let r = fig05_delta_cdf::Fig05Result {
        cdf: vec![0.1; fig05_delta_cdf::BOUNDS.len()],
    };
    assert!((r.small_delta_fraction() - 0.1).abs() < 1e-12);
    assert!(r.to_string().contains("delta <= 1"));
}

#[test]
fn fig07_and_fig08_render() {
    let f7 = fig07_successors::Fig07Result {
        fractions: [0.4, 0.2, 0.2, 0.15, 0.05],
    };
    assert!(f7.to_string().contains(">8"));
    let f8 = fig08_successor_prob::Fig08Result {
        first: 0.5,
        second: 0.2,
        third: 0.1,
        other: 0.2,
    };
    let text = f8.to_string();
    assert!(text.contains("50.0%"));
    assert!(text.contains("top-50"));
}

#[test]
fn fig09_lookup_and_render() {
    let r = fig09_dstlb_on_istlb::Fig09Result {
        rows: vec![fig09_dstlb_on_istlb::SpeedupRow {
            prefetcher: "sp".into(),
            geomean_speedup: 1.016,
        }],
    };
    assert_eq!(r.speedup_of("sp"), Some(1.016));
    assert_eq!(r.speedup_of("nope"), None);
    assert!(r.to_string().contains("+1.60%"));
}

#[test]
fn fig10_renders() {
    let r = fig10_fnlmma_tlb::Fig10Result {
        speedup_free_translation: 1.05,
        speedup_with_translation: 1.01,
        mean_walk_reduction: 0.296,
        crossing_walks_pki: 0.4,
    };
    let text = r.to_string();
    assert!(text.contains("+5.00%"));
    assert!(text.contains("29.6%"));
}

#[test]
fn fig13_renders() {
    let r = fig13_coverage_budget::Fig13Result {
        points: vec![fig13_coverage_budget::BudgetPoint {
            storage_kb: 3.76,
            coverage: 0.81,
        }],
    };
    let text = r.to_string();
    assert!(text.contains("3.76 KB"));
    assert!(text.contains("81.0%"));
}

#[test]
fn fig15_lookup_and_render() {
    let r = fig15_iso_speedup::Fig15Result {
        rows: vec![fig15_iso_speedup::IsoRow {
            prefetcher: "morrigan".into(),
            geomean_speedup: 1.076,
            mean_coverage: 0.76,
        }],
    };
    assert!(r.row("morrigan").is_some());
    let text = r.to_string();
    assert!(text.contains("+7.60%"));
    assert!(text.contains("76.0%"));
}

#[test]
fn fig16_renders_served_by() {
    let r = fig16_walk_refs::Fig16Result {
        rows: vec![fig16_walk_refs::WalkRefRow {
            prefetcher: "morrigan".into(),
            demand_normalized: 0.31,
            prefetch_normalized: 1.17,
        }],
        morrigan_served_by: [0.2, 0.25, 0.45, 0.1],
    };
    let text = r.to_string();
    assert!(text.contains("31%"));
    assert!(text.contains("117%"));
    assert!(text.contains("LLC 45%"));
}

#[test]
fn fig17_to_fig20_render() {
    let f17 = fig17_mono::Fig17Result {
        ensemble_speedup: 1.076,
        mono_speedup: 1.057,
        ensemble_coverage: 0.76,
        mono_coverage: 0.7,
    };
    assert!(f17.to_string().contains("morrigan-mono"));

    let f18 = fig18_other_approaches::Fig18Result {
        rows: vec![fig18_other_approaches::ApproachRow {
            approach: "p2tlb".into(),
            geomean_speedup: 0.811,
        }],
    };
    assert!(f18.to_string().contains("-18.90%"));
    assert_eq!(f18.speedup_of("p2tlb"), Some(0.811));

    let f19 = fig19_icache_synergy::Fig19Result {
        fnlmma_speedup: 1.012,
        morrigan_speedup: 1.076,
        combined_speedup: 1.109,
        crossing_translation_ready: 0.517,
    };
    let text = f19.to_string();
    assert!(text.contains("+10.90%"));
    assert!(text.contains("51.7%"));

    let f20 = fig20_smt::Fig20Result {
        morrigan_speedup: 1.089,
        fnlmma_speedup: 1.034,
        combined_speedup: 1.137,
        morrigan_undoubled_speedup: 1.064,
    };
    let text = f20.to_string();
    assert!(text.contains("+13.70%"));
    assert!(text.contains("1x tables"));
}

#[test]
fn tuning_renders_and_indexes() {
    let r = tuning::TuningResult {
        rows: vec![tuning::TuningRow {
            config: "pb-64".into(),
            coverage: 0.76,
            prefetch_refs_pki: 2.0,
        }],
    };
    assert!(r.row("pb-64").is_some());
    assert!(r.row("missing").is_none());
    let text = r.to_string();
    assert!(text.contains("76.0%"));
    assert!(text.contains("2.00"));
}
