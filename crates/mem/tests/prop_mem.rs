//! Property-based tests for the cache hierarchy.

use morrigan_mem::{AccessClass, Cache, CacheConfig, HierarchyConfig, MemLevel, MemoryHierarchy};
use morrigan_types::CacheLine;
use proptest::prelude::*;

fn small_hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new(HierarchyConfig {
        l1i: CacheConfig {
            sets: 4,
            ways: 2,
            latency: 4,
        },
        l1d: CacheConfig {
            sets: 4,
            ways: 2,
            latency: 4,
        },
        l2: CacheConfig {
            sets: 16,
            ways: 4,
            latency: 8,
        },
        llc: CacheConfig {
            sets: 64,
            ways: 4,
            latency: 10,
        },
        dram_latency: 120,
        l2_prefetch: morrigan_mem::L2PrefetcherConfig::disabled(),
    })
}

proptest! {
    /// Latency is exactly determined by the serving level.
    #[test]
    fn latency_matches_served_level(
        lines in prop::collection::vec(0u64..512, 1..200),
        classes in prop::collection::vec(0u8..3, 1..200)
    ) {
        let mut mem = small_hierarchy();
        for (line, class) in lines.iter().zip(classes.iter().cycle()) {
            let class = match class {
                0 => AccessClass::IFetch,
                1 => AccessClass::Data,
                _ => AccessClass::PageWalk,
            };
            let out = mem.access(CacheLine::new(*line), class);
            let l1 = 4;
            let expected = match out.served_by {
                MemLevel::L1I | MemLevel::L1D => l1,
                MemLevel::L2 => l1 + 8,
                MemLevel::Llc => l1 + 8 + 10,
                MemLevel::Dram => l1 + 8 + 10 + 120,
            };
            prop_assert_eq!(out.latency, expected);
        }
    }

    /// Repeating an access immediately always hits L1 (temporal locality
    /// is never lost by the bookkeeping).
    #[test]
    fn immediate_rereference_hits_l1(lines in prop::collection::vec(0u64..4096, 1..100)) {
        let mut mem = small_hierarchy();
        for &line in &lines {
            let line = CacheLine::new(line);
            let _ = mem.access(line, AccessClass::Data);
            let again = mem.access(line, AccessClass::Data);
            prop_assert_eq!(again.served_by, MemLevel::L1D);
        }
    }

    /// Served-by counters account for every access exactly once.
    #[test]
    fn served_counters_are_conserved(lines in prop::collection::vec(0u64..1024, 1..300)) {
        let mut mem = small_hierarchy();
        for &line in &lines {
            let _ = mem.access(CacheLine::new(line), AccessClass::PageWalk);
        }
        let total: u64 = MemLevel::ALL
            .iter()
            .map(|&l| mem.served_by(l).demand_walk)
            .sum();
        prop_assert_eq!(total, lines.len() as u64);
        prop_assert_eq!(mem.walk_refs_by_level().iter().sum::<u64>(), lines.len() as u64);
    }

    /// The standalone cache respects per-set associativity bounds under
    /// arbitrary fill/invalidate interleavings.
    #[test]
    fn cache_set_bounds(ops in prop::collection::vec((0u64..256, any::<bool>()), 1..400)) {
        let cfg = CacheConfig { sets: 8, ways: 2, latency: 1 };
        let mut cache = Cache::new(cfg);
        for &(line, invalidate) in &ops {
            let line = CacheLine::new(line);
            if invalidate {
                cache.invalidate(line);
                prop_assert!(!cache.contains(line));
            } else {
                cache.fill(line);
                prop_assert!(cache.contains(line));
            }
            prop_assert!(cache.occupancy() <= 16);
        }
    }

    /// A fill's victim is never the line just filled, and after eviction
    /// the victim is gone.
    #[test]
    fn eviction_reports_are_accurate(lines in prop::collection::vec(0u64..64, 1..200)) {
        let cfg = CacheConfig { sets: 2, ways: 2, latency: 1 };
        let mut cache = Cache::new(cfg);
        for &line in &lines {
            let line = CacheLine::new(line);
            if let Some(victim) = cache.fill(line) {
                prop_assert_ne!(victim, line);
                prop_assert!(!cache.contains(victim));
            }
            prop_assert!(cache.contains(line));
        }
    }
}
