//! The shared, sharded last-level cache.
//!
//! In the multi-core machine the LLC is one structure shared by every
//! core. To model banked designs it is split into `shards` independent
//! set-associative banks selected by the low line-number bits (the same
//! interleaving real LLCs use so consecutive lines stripe across banks).
//! A line is owned by exactly one shard; the shard-internal tag drops
//! the shard-select bits so each bank sees a dense line space.
//!
//! With `shards == 1` the structure degenerates to exactly one
//! [`Cache`] with the full configured geometry, probed with unmodified
//! line numbers — bit-identical to the pre-multicore private LLC. That
//! identity is what lets the `cores=1` pin hold through this refactor.
//!
//! ## Concurrency
//!
//! Each shard sits behind its own `RwLock`, and the lock+bank pair is
//! padded to a cache-line boundary ([`CachePadded`]) so two host threads
//! touching adjacent shards never false-share a line. The single-core
//! hot path pays nothing for this: `&mut self` accessors go through
//! `RwLock::get_mut`, which is a plain field access when the borrow is
//! exclusive.
//!
//! The parallel machine never mutates shards concurrently. During an
//! epoch every core reads the *frozen* epoch-start image (shared read
//! locks, no writers) through an [`LlcView`] that overlays the core's
//! own fills; at the epoch barrier each shard's buffered operations are
//! replayed under the write lock in (core, sequence) order. Replay
//! order is a pure function of the logs, so the machine's results are
//! independent of how many host threads executed the epoch.

use std::sync::{Arc, RwLock};

use morrigan_types::CacheLine;

use crate::cache::{Cache, CacheConfig};

/// Pads (and aligns) `T` to a 64-byte cache-line boundary so adjacent
/// array elements never share a line — the classic false-sharing guard
/// for per-shard locks.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// One buffered LLC operation, replayed at the epoch barrier. The line
/// key is shard-local (shard-select bits already dropped), so replay
/// applies it to the owning bank directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcOp {
    /// A probe hit: promote the line to MRU (the frozen-read equivalent
    /// of [`Cache::probe`] returning true).
    Touch(CacheLine),
    /// A fill: install the line as MRU.
    Fill(CacheLine),
}

/// A sharded LLC: `shards` independent LRU banks over disjoint line
/// partitions, each behind its own cache-line-padded `RwLock`.
///
/// # Examples
///
/// ```
/// use morrigan_mem::{CacheConfig, Llc};
/// use morrigan_types::CacheLine;
///
/// let mut llc = Llc::new(CacheConfig { sets: 64, ways: 4, latency: 10 }, 4);
/// let line = CacheLine::new(0x1237);
/// assert!(!llc.probe(line));
/// llc.fill(line);
/// assert!(llc.probe(line));
/// assert_eq!(llc.occupancy(), 1);
/// ```
#[derive(Debug)]
pub struct Llc {
    shards: Vec<CachePadded<RwLock<Cache>>>,
    /// log2 of the shard count; shard select = `line & ((1 << bits) - 1)`.
    shard_bits: u32,
}

impl Clone for Llc {
    fn clone(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|s| CachePadded(RwLock::new(s.0.read().expect("llc shard lock").clone())))
                .collect(),
            shard_bits: self.shard_bits,
        }
    }
}

impl Llc {
    /// Builds an empty LLC of `shards` banks that together have `cfg`'s
    /// total geometry (each bank holds `cfg.sets / shards` sets).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a positive power of two or does not
    /// divide `cfg.sets` into a positive power-of-two per-bank set count.
    pub fn new(cfg: CacheConfig, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "LLC shard count must be a positive power of two"
        );
        assert!(
            cfg.sets.is_multiple_of(shards) && (cfg.sets / shards).is_power_of_two(),
            "LLC sets ({}) must divide into {shards} power-of-two banks",
            cfg.sets
        );
        let bank = CacheConfig {
            sets: cfg.sets / shards,
            ways: cfg.ways,
            latency: cfg.latency,
        };
        Self {
            shards: (0..shards)
                .map(|_| CachePadded(RwLock::new(Cache::new(bank))))
                .collect(),
            shard_bits: shards.trailing_zeros(),
        }
    }

    #[inline]
    pub(crate) fn split(&self, line: CacheLine) -> (usize, CacheLine) {
        let raw = line.raw();
        let shard = (raw & ((1u64 << self.shard_bits) - 1)) as usize;
        (shard, CacheLine::new(raw >> self.shard_bits))
    }

    /// Looks up `line` in its owning shard, promoting on hit.
    #[inline]
    pub fn probe(&mut self, line: CacheLine) -> bool {
        let (shard, key) = self.split(line);
        self.shards[shard]
            .0
            .get_mut()
            .expect("llc shard lock")
            .probe(key)
    }

    /// Whether `line` is resident, without disturbing LRU state. Safe
    /// against concurrent readers (shared lock); the parallel machine
    /// calls this between barriers, when no writer exists.
    pub fn contains(&self, line: CacheLine) -> bool {
        let (shard, key) = self.split(line);
        self.shards[shard]
            .0
            .read()
            .expect("llc shard lock")
            .contains(key)
    }

    /// Software-prefetches the tag array of the set `line` maps to in
    /// its owning shard — a scheduling hint for batched probes.
    #[inline]
    pub fn prefetch_set(&self, line: CacheLine) {
        let (shard, key) = self.split(line);
        self.shards[shard]
            .0
            .read()
            .expect("llc shard lock")
            .prefetch_set(key);
    }

    /// Batched residency probe: bit `i` is set iff `batch[i]` is
    /// resident in its owning shard. LRU state is untouched; equals
    /// calling [`contains`](Self::contains) per key.
    pub fn probe_batch(&self, batch: &[CacheLine]) -> u32 {
        let mut mask = 0u32;
        for (i, &line) in batch.iter().enumerate() {
            mask |= (self.contains(line) as u32) << i;
        }
        mask
    }

    /// Installs `line` as MRU in its owning shard.
    #[inline]
    pub fn fill(&mut self, line: CacheLine) {
        let (shard, key) = self.split(line);
        self.shards[shard]
            .0
            .get_mut()
            .expect("llc shard lock")
            .fill(key);
    }

    /// Replays one epoch's buffered operations against shard `shard`,
    /// in the order given, under the shard's write lock. The parallel
    /// machine concatenates per-core logs in core-id order before
    /// calling, which is what makes the result thread-count-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn replay_shard(&self, shard: usize, ops: &[LlcOp]) {
        let mut bank = self.shards[shard].0.write().expect("llc shard lock");
        for op in ops {
            match *op {
                LlcOp::Touch(key) => {
                    bank.probe(key);
                }
                LlcOp::Fill(key) => {
                    bank.fill(key);
                }
            }
        }
    }

    /// Number of banks.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Valid lines across all banks.
    pub fn occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.0.read().expect("llc shard lock").occupancy())
            .sum()
    }

    /// Valid lines in one bank (shared-structure audit: per-shard
    /// occupancies telescope to [`occupancy`](Self::occupancy)).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_occupancy(&self, shard: usize) -> usize {
        self.shards[shard]
            .0
            .read()
            .expect("llc shard lock")
            .occupancy()
    }

    /// Total capacity in lines across all banks.
    pub fn capacity_lines(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let bank = s.0.read().expect("llc shard lock");
                bank.config().sets * bank.config().ways
            })
            .sum()
    }
}

/// A core's epoch-local window onto the shared LLC.
///
/// During an epoch the shared banks are frozen: the view answers probes
/// from the epoch-start image (non-promoting shared reads) plus an
/// overlay of the lines this core filled since the barrier, and logs
/// every operation — in program order, bucketed by owning shard — for
/// deterministic replay at the next barrier.
#[derive(Debug, Clone)]
pub struct LlcView {
    shared: Arc<Llc>,
    /// Raw line numbers this core filled this epoch (visible to its own
    /// later probes before replay lands them in the shared banks).
    overlay: Vec<u64>,
    /// Per-shard operation logs, program order within each shard.
    ops: Vec<Vec<LlcOp>>,
}

impl LlcView {
    /// A fresh view over `shared` with empty overlay and logs.
    pub fn new(shared: Arc<Llc>) -> Self {
        let shards = shared.shard_count();
        Self {
            shared,
            overlay: Vec::new(),
            ops: vec![Vec::new(); shards],
        }
    }

    /// Epoch-frozen probe: hit iff the line is in this core's overlay or
    /// the shared epoch-start image. Hits log a [`LlcOp::Touch`] so the
    /// LRU promotion replays at the barrier.
    #[inline]
    pub fn probe(&mut self, line: CacheLine) -> bool {
        let raw = line.raw();
        let (shard, key) = self.shared.split(line);
        let hit = self.overlay.contains(&raw) || self.shared.contains(line);
        if hit {
            self.ops[shard].push(LlcOp::Touch(key));
        }
        hit
    }

    /// Epoch-frozen fill: the line joins this core's overlay immediately
    /// and the shared bank at the next barrier replay.
    #[inline]
    pub fn fill(&mut self, line: CacheLine) {
        let raw = line.raw();
        let (shard, key) = self.shared.split(line);
        self.ops[shard].push(LlcOp::Fill(key));
        if !self.overlay.contains(&raw) {
            self.overlay.push(raw);
        }
    }

    /// Hands this epoch's per-shard logs to the caller (swapping in the
    /// cleared buffers of `into`) and resets the overlay. `into` must
    /// hold one empty `Vec` per shard.
    pub fn take_epoch(&mut self, into: &mut Vec<Vec<LlcOp>>) {
        debug_assert_eq!(into.len(), self.ops.len());
        debug_assert!(into.iter().all(Vec::is_empty));
        std::mem::swap(&mut self.ops, into);
        self.overlay.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 4,
            latency: 10,
        }
    }

    #[test]
    fn one_shard_matches_plain_cache_exactly() {
        let mut llc = Llc::new(cfg(), 1);
        let mut cache = Cache::new(cfg());
        // A mixed probe/fill trace must agree call for call.
        let lines: Vec<CacheLine> = (0..4096u64)
            .map(|i| CacheLine::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40))
            .collect();
        for (i, &line) in lines.iter().enumerate() {
            if i % 3 == 0 {
                cache.fill(line);
                llc.fill(line);
            } else {
                assert_eq!(llc.probe(line), cache.probe(line), "probe #{i}");
            }
        }
        assert_eq!(llc.occupancy(), cache.occupancy());
    }

    #[test]
    fn shards_partition_the_line_space() {
        let mut llc = Llc::new(cfg(), 4);
        assert_eq!(llc.shard_count(), 4);
        // Lines 0..4 land in distinct shards.
        for i in 0..4u64 {
            llc.fill(CacheLine::new(i));
        }
        for s in 0..4 {
            assert_eq!(llc.shard_occupancy(s), 1, "shard {s}");
        }
        assert_eq!(llc.occupancy(), 4);
        for i in 0..4u64 {
            assert!(llc.contains(CacheLine::new(i)));
            assert!(llc.probe(CacheLine::new(i)));
        }
        assert!(!llc.contains(CacheLine::new(4 + 64 * 4)));
    }

    #[test]
    fn sharding_preserves_total_capacity() {
        for shards in [1, 2, 4, 8] {
            let llc = Llc::new(cfg(), shards);
            assert_eq!(llc.capacity_lines(), 64 * 4);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = Llc::new(cfg(), 3);
    }

    #[test]
    fn shards_are_padded_to_cache_line_boundaries() {
        assert_eq!(std::mem::align_of::<CachePadded<RwLock<Cache>>>(), 64);
        assert!(std::mem::size_of::<CachePadded<RwLock<Cache>>>().is_multiple_of(64));
        let llc = Llc::new(cfg(), 4);
        let addrs: Vec<usize> = llc
            .shards
            .iter()
            .map(|s| s as *const CachePadded<RwLock<Cache>> as usize)
            .collect();
        for pair in addrs.windows(2) {
            assert!(
                pair[1] - pair[0] >= 64,
                "adjacent shards must not share a cache line"
            );
        }
        for addr in addrs {
            assert!(addr.is_multiple_of(64), "shards must be line-aligned");
        }
    }

    #[test]
    fn view_replay_matches_direct_mutation() {
        // One core's operations through a view + barrier replay must
        // leave the shared LLC exactly as the same operations applied
        // directly would.
        let shared = Arc::new(Llc::new(cfg(), 4));
        let mut direct = Llc::new(cfg(), 4);
        let mut view = LlcView::new(Arc::clone(&shared));
        let mut logs: Vec<Vec<LlcOp>> = vec![Vec::new(); 4];
        for i in 0..2048u64 {
            let line = CacheLine::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 42);
            if i % 3 == 0 {
                direct.fill(line);
                view.fill(line);
            } else {
                direct.probe(line);
                view.probe(line);
            }
            if i % 64 == 63 {
                // Epoch barrier: replay and clear.
                view.take_epoch(&mut logs);
                for (shard, ops) in logs.iter_mut().enumerate() {
                    shared.replay_shard(shard, ops);
                    ops.clear();
                }
            }
        }
        view.take_epoch(&mut logs);
        for (shard, ops) in logs.iter_mut().enumerate() {
            shared.replay_shard(shard, ops);
            ops.clear();
        }
        assert_eq!(shared.occupancy(), direct.occupancy());
        for s in 0..4 {
            assert_eq!(
                shared.shard_occupancy(s),
                direct.shard_occupancy(s),
                "shard {s}"
            );
        }
    }

    #[test]
    fn view_sees_own_epoch_fills_before_replay() {
        let shared = Arc::new(Llc::new(cfg(), 2));
        let mut view = LlcView::new(Arc::clone(&shared));
        let line = CacheLine::new(0x123);
        assert!(!view.probe(line));
        view.fill(line);
        assert!(view.probe(line), "own fills are visible within the epoch");
        assert!(
            !shared.contains(line),
            "shared banks stay frozen until the barrier replay"
        );
    }
}
