//! The shared, sharded last-level cache.
//!
//! In the multi-core machine the LLC is one structure shared by every
//! core. To model banked designs it is split into `shards` independent
//! set-associative banks selected by the low line-number bits (the same
//! interleaving real LLCs use so consecutive lines stripe across banks).
//! A line is owned by exactly one shard; the shard-internal tag drops
//! the shard-select bits so each bank sees a dense line space.
//!
//! With `shards == 1` the structure degenerates to exactly one
//! [`Cache`] with the full configured geometry, probed with unmodified
//! line numbers — bit-identical to the pre-multicore private LLC. That
//! identity is what lets the `cores=1` pin hold through this refactor.

use morrigan_types::CacheLine;

use crate::cache::{Cache, CacheConfig};

/// A sharded LLC: `shards` independent LRU banks over disjoint line
/// partitions.
///
/// # Examples
///
/// ```
/// use morrigan_mem::{CacheConfig, Llc};
/// use morrigan_types::CacheLine;
///
/// let mut llc = Llc::new(CacheConfig { sets: 64, ways: 4, latency: 10 }, 4);
/// let line = CacheLine::new(0x1237);
/// assert!(!llc.probe(line));
/// llc.fill(line);
/// assert!(llc.probe(line));
/// assert_eq!(llc.occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    shards: Vec<Cache>,
    /// log2 of the shard count; shard select = `line & ((1 << bits) - 1)`.
    shard_bits: u32,
}

impl Llc {
    /// Builds an empty LLC of `shards` banks that together have `cfg`'s
    /// total geometry (each bank holds `cfg.sets / shards` sets).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a positive power of two or does not
    /// divide `cfg.sets` into a positive power-of-two per-bank set count.
    pub fn new(cfg: CacheConfig, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "LLC shard count must be a positive power of two"
        );
        assert!(
            cfg.sets.is_multiple_of(shards) && (cfg.sets / shards).is_power_of_two(),
            "LLC sets ({}) must divide into {shards} power-of-two banks",
            cfg.sets
        );
        let bank = CacheConfig {
            sets: cfg.sets / shards,
            ways: cfg.ways,
            latency: cfg.latency,
        };
        Self {
            shards: (0..shards).map(|_| Cache::new(bank)).collect(),
            shard_bits: shards.trailing_zeros(),
        }
    }

    #[inline]
    fn split(&self, line: CacheLine) -> (usize, CacheLine) {
        let raw = line.raw();
        let shard = (raw & ((1u64 << self.shard_bits) - 1)) as usize;
        (shard, CacheLine::new(raw >> self.shard_bits))
    }

    /// Looks up `line` in its owning shard, promoting on hit.
    #[inline]
    pub fn probe(&mut self, line: CacheLine) -> bool {
        let (shard, key) = self.split(line);
        self.shards[shard].probe(key)
    }

    /// Whether `line` is resident, without disturbing LRU state.
    pub fn contains(&self, line: CacheLine) -> bool {
        let (shard, key) = self.split(line);
        self.shards[shard].contains(key)
    }

    /// Software-prefetches the tag array of the set `line` maps to in
    /// its owning shard — a scheduling hint for batched probes.
    #[inline]
    pub fn prefetch_set(&self, line: CacheLine) {
        let (shard, key) = self.split(line);
        self.shards[shard].prefetch_set(key);
    }

    /// Batched residency probe: bit `i` is set iff `batch[i]` is
    /// resident in its owning shard. LRU state is untouched; equals
    /// calling [`contains`](Self::contains) per key.
    pub fn probe_batch(&self, batch: &[CacheLine]) -> u32 {
        let mut mask = 0u32;
        for (i, &line) in batch.iter().enumerate() {
            if let Some(&next) = batch.get(i + 1) {
                self.prefetch_set(next);
            }
            mask |= (self.contains(line) as u32) << i;
        }
        mask
    }

    /// Installs `line` as MRU in its owning shard.
    #[inline]
    pub fn fill(&mut self, line: CacheLine) {
        let (shard, key) = self.split(line);
        self.shards[shard].fill(key);
    }

    /// Number of banks.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Valid lines across all banks.
    pub fn occupancy(&self) -> usize {
        self.shards.iter().map(Cache::occupancy).sum()
    }

    /// Valid lines in one bank (shared-structure audit: per-shard
    /// occupancies telescope to [`occupancy`](Self::occupancy)).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_occupancy(&self, shard: usize) -> usize {
        self.shards[shard].occupancy()
    }

    /// Total capacity in lines across all banks.
    pub fn capacity_lines(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.config().sets * s.config().ways)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 4,
            latency: 10,
        }
    }

    #[test]
    fn one_shard_matches_plain_cache_exactly() {
        let mut llc = Llc::new(cfg(), 1);
        let mut cache = Cache::new(cfg());
        // A mixed probe/fill trace must agree call for call.
        let lines: Vec<CacheLine> = (0..4096u64)
            .map(|i| CacheLine::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40))
            .collect();
        for (i, &line) in lines.iter().enumerate() {
            if i % 3 == 0 {
                cache.fill(line);
                llc.fill(line);
            } else {
                assert_eq!(llc.probe(line), cache.probe(line), "probe #{i}");
            }
        }
        assert_eq!(llc.occupancy(), cache.occupancy());
    }

    #[test]
    fn shards_partition_the_line_space() {
        let mut llc = Llc::new(cfg(), 4);
        assert_eq!(llc.shard_count(), 4);
        // Lines 0..4 land in distinct shards.
        for i in 0..4u64 {
            llc.fill(CacheLine::new(i));
        }
        for s in 0..4 {
            assert_eq!(llc.shard_occupancy(s), 1, "shard {s}");
        }
        assert_eq!(llc.occupancy(), 4);
        for i in 0..4u64 {
            assert!(llc.contains(CacheLine::new(i)));
            assert!(llc.probe(CacheLine::new(i)));
        }
        assert!(!llc.contains(CacheLine::new(4 + 64 * 4)));
    }

    #[test]
    fn sharding_preserves_total_capacity() {
        for shards in [1, 2, 4, 8] {
            let llc = Llc::new(cfg(), shards);
            assert_eq!(llc.capacity_lines(), 64 * 4);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = Llc::new(cfg(), 3);
    }
}
