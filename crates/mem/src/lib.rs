//! Memory-system substrate: set-associative caches, a three-level cache
//! hierarchy with a DRAM latency model, and a lightweight SPP-style L2
//! prefetcher.
//!
//! This reproduces the memory model the paper's ChampSim setup provides
//! (Table 1): 32 KB 8-way L1I/L1D, 512 KB 8-way L2, 2 MB 16-way LLC, and a
//! fixed-latency DRAM. The model is *latency-and-contents* only — it tracks
//! which lines are resident (to decide hit level) and charges the serial
//! lookup latency down the hierarchy, but does not model writebacks or bus
//! bandwidth. That is sufficient for the paper's measurements, which depend
//! on (i) where page-walk references are served (Fig 16's L1/L2/LLC/DRAM
//! breakdown) and (ii) I-fetch latency (front-end stalls).
//!
//! # Examples
//!
//! ```
//! use morrigan_mem::{AccessClass, HierarchyConfig, MemLevel, MemoryHierarchy};
//! use morrigan_types::CacheLine;
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let line = CacheLine::new(0x40);
//! let cold = mem.access(line, AccessClass::PageWalk);
//! assert_eq!(cold.served_by, MemLevel::Dram);
//! let warm = mem.access(line, AccessClass::PageWalk);
//! assert_eq!(warm.served_by, MemLevel::L1D);
//! assert!(warm.latency < cold.latency);
//! ```

mod cache;
mod hierarchy;
mod l2_prefetch;
mod llc;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{
    AccessClass, AccessOutcome, HierarchyConfig, LevelStats, MemLevel, MemoryHierarchy,
};
pub use l2_prefetch::{L2Prefetcher, L2PrefetcherConfig};
pub use llc::{CachePadded, Llc, LlcOp, LlcView};
