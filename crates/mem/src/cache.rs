//! A generic set-associative cache over 64-byte line numbers.
//!
//! The same structure backs every level of the hierarchy; TLBs use their own
//! generic buffer in `morrigan-vm` because they key on pages, not lines.

use morrigan_types::CacheLine;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Lookup latency in cycles charged when this level is probed.
    pub latency: u64,
}

impl CacheConfig {
    /// A configuration from total capacity in bytes and associativity,
    /// assuming 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a positive power of two or if
    /// `ways` is zero.
    pub fn from_capacity(bytes: usize, ways: usize, latency: u64) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let lines = bytes / 64;
        assert!(
            lines.is_multiple_of(ways),
            "capacity must be divisible by ways*64"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Self {
            sets,
            ways,
            latency,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: CacheLine,
    /// Monotonic timestamp for LRU ordering; smaller is older.
    stamp: u64,
    valid: bool,
}

/// A set-associative, LRU-replacement cache of line numbers.
///
/// # Examples
///
/// ```
/// use morrigan_mem::{Cache, CacheConfig};
/// use morrigan_types::CacheLine;
///
/// let mut cache = Cache::new(CacheConfig { sets: 2, ways: 2, latency: 4 });
/// let line = CacheLine::new(8);
/// assert!(!cache.probe(line));
/// cache.fill(line);
/// assert!(cache.probe(line));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two() && cfg.sets > 0,
            "sets must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be positive");
        Self {
            cfg,
            ways: vec![
                Way {
                    line: CacheLine::new(0),
                    stamp: 0,
                    valid: false
                };
                cfg.sets * cfg.ways
            ],
            tick: 0,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_range(&self, line: CacheLine) -> std::ops::Range<usize> {
        let set = (line.raw() as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    /// Looks up `line`, promoting it to MRU on a hit. Returns whether it hit.
    pub fn probe(&mut self, line: CacheLine) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.line == line {
                way.stamp = tick;
                return true;
            }
        }
        false
    }

    /// Whether `line` is resident, without disturbing LRU state.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.ways[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.line == line)
    }

    /// Installs `line` as MRU, returning the evicted victim line, if any.
    ///
    /// Filling a line that is already resident only refreshes its LRU
    /// position (no duplicate is created).
    pub fn fill(&mut self, line: CacheLine) -> Option<CacheLine> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Already present: refresh.
        for way in &mut self.ways[range.clone()] {
            if way.valid && way.line == line {
                way.stamp = tick;
                return None;
            }
        }
        // Free way if any.
        for way in &mut self.ways[range.clone()] {
            if !way.valid {
                *way = Way {
                    line,
                    stamp: tick,
                    valid: true,
                };
                return None;
            }
        }
        // Evict LRU.
        let victim_idx = {
            let set = &self.ways[range.clone()];
            let (i, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .expect("set has at least one way");
            range.start + i
        };
        let victim = self.ways[victim_idx].line;
        self.ways[victim_idx] = Way {
            line,
            stamp: tick,
            valid: true,
        };
        Some(victim)
    }

    /// Removes `line` if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: CacheLine) -> bool {
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.line == line {
                way.valid = false;
                return true;
            }
        }
        false
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        for way in &mut self.ways {
            way.valid = false;
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            latency: 1,
        })
    }

    /// Lines mapping to set 0 of a 2-set cache: even line numbers.
    fn set0_line(i: u64) -> CacheLine {
        CacheLine::new(i * 2)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let line = CacheLine::new(5);
        assert!(!c.probe(line));
        assert_eq!(c.fill(line), None);
        assert!(c.probe(line));
        assert!(c.contains(line));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        // Touch line 1 so line 2 becomes LRU.
        assert!(c.probe(set0_line(1)));
        let victim = c.fill(set0_line(3));
        assert_eq!(victim, Some(set0_line(2)));
        assert!(c.contains(set0_line(1)));
        assert!(c.contains(set0_line(3)));
        assert!(!c.contains(set0_line(2)));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(1));
        assert_eq!(c.occupancy(), 1);
        // A second distinct fill must not evict: the set still has room.
        assert_eq!(c.fill(set0_line(2)), None);
    }

    #[test]
    fn refill_refreshes_lru() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        c.fill(set0_line(1)); // refresh 1 → 2 is LRU
        assert_eq!(c.fill(set0_line(3)), Some(set0_line(2)));
    }

    #[test]
    fn contains_does_not_promote() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        // `contains` must not refresh line 1's recency.
        assert!(c.contains(set0_line(1)));
        assert_eq!(c.fill(set0_line(3)), Some(set0_line(1)));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = tiny();
        c.fill(set0_line(1));
        assert!(c.invalidate(set0_line(1)));
        assert!(!c.invalidate(set0_line(1)));
        c.fill(set0_line(1));
        c.fill(CacheLine::new(3));
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Fill set 0 to capacity, then fill set 1; set 0 must be untouched.
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        assert_eq!(c.fill(CacheLine::new(1)), None);
        assert_eq!(c.fill(CacheLine::new(3)), None);
        assert!(c.contains(set0_line(1)));
        assert!(c.contains(set0_line(2)));
    }

    #[test]
    fn from_capacity_math() {
        let cfg = CacheConfig::from_capacity(32 * 1024, 8, 4);
        assert_eq!(cfg.sets, 64);
        assert_eq!(cfg.ways, 8);
        assert_eq!(cfg.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_capacity_rejects_non_pow2() {
        let _ = CacheConfig::from_capacity(24 * 1024, 8, 4);
    }
}
