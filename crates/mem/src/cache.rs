//! A generic set-associative cache over 64-byte line numbers.
//!
//! The same structure backs every level of the hierarchy; TLBs use their own
//! generic buffer in `morrigan-vm` because they key on pages, not lines.

use morrigan_types::scan;
use morrigan_types::CacheLine;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Lookup latency in cycles charged when this level is probed.
    pub latency: u64,
}

impl CacheConfig {
    /// A configuration from total capacity in bytes and associativity,
    /// assuming 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a positive power of two or if
    /// `ways` is zero.
    pub fn from_capacity(bytes: usize, ways: usize, latency: u64) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let lines = bytes / 64;
        assert!(
            lines.is_multiple_of(ways),
            "capacity must be divisible by ways*64"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Self {
            sets,
            ways,
            latency,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }
}

/// Line-number sentinel marking an empty way. Real line numbers are
/// physical addresses shifted right by 6, so they can never reach it.
const NO_LINE: u64 = u64::MAX;

/// A set-associative, LRU-replacement cache of line numbers.
///
/// Tags and LRU stamps live in separate packed vectors
/// (structure-of-arrays), so a set probe scans one contiguous run of
/// tags. An empty way holds the [`NO_LINE`] tag and stamp 0; live stamps
/// are always ≥ 1, so victim selection is a single min-stamp pass that
/// prefers free ways in index order, then the LRU way.
///
/// # Examples
///
/// ```
/// use morrigan_mem::{Cache, CacheConfig};
/// use morrigan_types::CacheLine;
///
/// let mut cache = Cache::new(CacheConfig { sets: 2, ways: 2, latency: 4 });
/// let line = CacheLine::new(8);
/// assert!(!cache.probe(line));
/// cache.fill(line);
/// assert!(cache.probe(line));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets - 1`; the constructor asserts a power-of-two set count.
    set_mask: usize,
    lines: Vec<u64>,
    /// Monotonic timestamps for LRU ordering; smaller is older, 0 is empty.
    stamps: Vec<u64>,
    tick: u64,
    /// Index of the most recently hit/filled way, as a one-entry memo.
    /// Sound without invalidation hooks: a line only ever resides in its
    /// own set, so `lines[last_idx] == key` proves `last_idx` is the live
    /// way for `key`, and the memo path writes the same stamp the scan
    /// would.
    last_idx: usize,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two() && cfg.sets > 0,
            "sets must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be positive");
        Self {
            cfg,
            set_mask: cfg.sets - 1,
            lines: vec![NO_LINE; cfg.sets * cfg.ways],
            stamps: vec![0; cfg.sets * cfg.ways],
            tick: 0,
            last_idx: 0,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_range(&self, line: CacheLine) -> std::ops::Range<usize> {
        let start = ((line.raw() as usize) & self.set_mask) * self.cfg.ways;
        start..start + self.cfg.ways
    }

    /// Looks up `line`, promoting it to MRU on a hit. Returns whether it hit.
    pub fn probe(&mut self, line: CacheLine) -> bool {
        self.tick += 1;
        let key = line.raw();
        debug_assert_ne!(key, NO_LINE);
        // Fast path: instruction fetch probes the same line for runs of
        // consecutive instructions, so the previous hit's way usually
        // answers with a single compare.
        let li = self.last_idx;
        if self.lines[li] == key {
            self.stamps[li] = self.tick;
            return true;
        }
        let range = self.set_range(line);
        // One slice per probe: the branch-free kernel scans the set's
        // contiguous tags as one or two vector compares.
        let start = range.start;
        if let Some(w) = scan::find_tag(&self.lines[range], key) {
            self.stamps[start + w] = self.tick;
            self.last_idx = start + w;
            return true;
        }
        false
    }

    /// Whether `line` is resident, without disturbing LRU state.
    pub fn contains(&self, line: CacheLine) -> bool {
        let key = line.raw();
        self.lines[self.set_range(line)].contains(&key)
    }

    /// Software-prefetches the tag array of the set `line` maps to — a
    /// scheduling hint for batched probes; never required for
    /// correctness.
    #[inline]
    pub fn prefetch_set(&self, line: CacheLine) {
        scan::prefetch_tags(&self.lines[self.set_range(line)]);
    }

    /// Batched residency probe over up to [`scan::BATCH`] lines: bit `i`
    /// of the result is set iff `lines[i]` is resident. Each scan
    /// prefetches the following key's set; LRU state is untouched, so
    /// the batch equals calling [`contains`](Self::contains) per key.
    pub fn probe_batch(&self, batch: &[CacheLine]) -> u32 {
        debug_assert!(batch.len() <= scan::BATCH);
        let mut mask = 0u32;
        for (i, &line) in batch.iter().enumerate() {
            if let Some(&next) = batch.get(i + 1) {
                self.prefetch_set(next);
            }
            let resident = scan::find_tag(&self.lines[self.set_range(line)], line.raw()).is_some();
            mask |= (resident as u32) << i;
        }
        mask
    }

    /// Installs `line` as MRU, returning the evicted victim line, if any.
    ///
    /// Filling a line that is already resident only refreshes its LRU
    /// position (no duplicate is created).
    pub fn fill(&mut self, line: CacheLine) -> Option<CacheLine> {
        self.tick += 1;
        let tick = self.tick;
        let key = line.raw();
        debug_assert_ne!(key, NO_LINE);
        let range = self.set_range(line);
        let start = range.start;
        let lines = &mut self.lines[range.clone()];
        let stamps = &mut self.stamps[range];
        // Refresh a resident line, else replace the min-stamp way: empty
        // ways carry stamp 0 (below every live stamp ≥ 1) and ties pick
        // the lowest index, so the min-stamp way is the first free way
        // if one exists, the LRU way otherwise (pinned against the
        // fused scalar scan by the kernel's tests).
        let (way, hit) = scan::find_hit_or_victim(lines, stamps, key);
        if hit {
            stamps[way] = tick;
            self.last_idx = start + way;
            return None;
        }
        let victim = way;
        let victim_stamp = stamps[victim];
        let evicted = (victim_stamp != 0).then(|| CacheLine::new(lines[victim]));
        lines[victim] = key;
        stamps[victim] = tick;
        self.last_idx = start + victim;
        evicted
    }

    /// Probes for `line`, promoting it to MRU on a hit; on a miss,
    /// installs it as MRU over the LRU way. Returns whether it hit.
    ///
    /// The final resident/MRU state is exactly a probe-then-fill pair's,
    /// but in one set scan — the fast-forward warming kernel
    /// (`MemoryHierarchy::warm` in `morrigan-mem`) runs this on every
    /// demand line of a skip stretch, where the halved scan cost is the
    /// difference between warming paying for itself and not.
    pub fn warm_fill(&mut self, line: CacheLine) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let key = line.raw();
        debug_assert_ne!(key, NO_LINE);
        let li = self.last_idx;
        if self.lines[li] == key {
            self.stamps[li] = tick;
            return true;
        }
        let range = self.set_range(line);
        let start = range.start;
        let lines = &mut self.lines[range.clone()];
        let stamps = &mut self.stamps[range];
        let (way, hit) = scan::find_hit_or_victim(lines, stamps, key);
        lines[way] = key;
        stamps[way] = tick;
        self.last_idx = start + way;
        hit
    }

    /// Removes `line` if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: CacheLine) -> bool {
        let key = line.raw();
        let range = self.set_range(line);
        for i in range {
            if self.lines[i] == key {
                self.lines[i] = NO_LINE;
                self.stamps[i] = 0;
                return true;
            }
        }
        false
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.lines.fill(NO_LINE);
        self.stamps.fill(0);
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|&&l| l != NO_LINE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            latency: 1,
        })
    }

    /// Lines mapping to set 0 of a 2-set cache: even line numbers.
    fn set0_line(i: u64) -> CacheLine {
        CacheLine::new(i * 2)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let line = CacheLine::new(5);
        assert!(!c.probe(line));
        assert_eq!(c.fill(line), None);
        assert!(c.probe(line));
        assert!(c.contains(line));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        // Touch line 1 so line 2 becomes LRU.
        assert!(c.probe(set0_line(1)));
        let victim = c.fill(set0_line(3));
        assert_eq!(victim, Some(set0_line(2)));
        assert!(c.contains(set0_line(1)));
        assert!(c.contains(set0_line(3)));
        assert!(!c.contains(set0_line(2)));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(1));
        assert_eq!(c.occupancy(), 1);
        // A second distinct fill must not evict: the set still has room.
        assert_eq!(c.fill(set0_line(2)), None);
    }

    #[test]
    fn refill_refreshes_lru() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        c.fill(set0_line(1)); // refresh 1 → 2 is LRU
        assert_eq!(c.fill(set0_line(3)), Some(set0_line(2)));
    }

    #[test]
    fn contains_does_not_promote() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        // `contains` must not refresh line 1's recency.
        assert!(c.contains(set0_line(1)));
        assert_eq!(c.fill(set0_line(3)), Some(set0_line(1)));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = tiny();
        c.fill(set0_line(1));
        assert!(c.invalidate(set0_line(1)));
        assert!(!c.invalidate(set0_line(1)));
        c.fill(set0_line(1));
        c.fill(CacheLine::new(3));
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Fill set 0 to capacity, then fill set 1; set 0 must be untouched.
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        assert_eq!(c.fill(CacheLine::new(1)), None);
        assert_eq!(c.fill(CacheLine::new(3)), None);
        assert!(c.contains(set0_line(1)));
        assert!(c.contains(set0_line(2)));
    }

    #[test]
    fn probe_batch_matches_contains() {
        let mut c = Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            latency: 1,
        });
        for i in 0..5u64 {
            c.fill(CacheLine::new(i * 3));
        }
        let keys: Vec<CacheLine> = (0..8u64).map(CacheLine::new).collect();
        let mask = c.probe_batch(&keys);
        for (i, &line) in keys.iter().enumerate() {
            assert_eq!(mask & (1 << i) != 0, c.contains(line), "key {i}");
        }
    }

    #[test]
    fn from_capacity_math() {
        let cfg = CacheConfig::from_capacity(32 * 1024, 8, 4);
        assert_eq!(cfg.sets, 64);
        assert_eq!(cfg.ways, 8);
        assert_eq!(cfg.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_capacity_rejects_non_pow2() {
        let _ = CacheConfig::from_capacity(24 * 1024, 8, 4);
    }

    #[test]
    fn warm_fill_hit_promotes_like_probe() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        assert!(c.warm_fill(set0_line(1))); // hit: promote 1 → 2 is LRU
        assert_eq!(c.fill(set0_line(3)), Some(set0_line(2)));
    }

    #[test]
    fn warm_fill_miss_installs_over_lru() {
        let mut c = tiny();
        c.fill(set0_line(1));
        c.fill(set0_line(2));
        assert!(!c.warm_fill(set0_line(3))); // miss: install over LRU 1
        assert!(c.contains(set0_line(3)));
        assert!(c.contains(set0_line(2)));
        assert!(!c.contains(set0_line(1)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn warm_fill_equals_probe_then_fill() {
        // The merged scan must leave the same final state as the
        // two-pass probe-or-fill it replaces, across a mixed access
        // sequence exercising hits, misses, and repeats.
        let seq = [1u64, 3, 1, 5, 7, 3, 9, 1, 5, 11, 3, 3, 7];
        let mut merged = tiny();
        let mut two_pass = tiny();
        for &i in &seq {
            let line = set0_line(i);
            merged.warm_fill(line);
            if !two_pass.probe(line) {
                two_pass.fill(line);
            }
        }
        for &i in &seq {
            assert_eq!(
                merged.contains(set0_line(i)),
                two_pass.contains(set0_line(i)),
                "divergent residency for line {i}"
            );
        }
        // And the LRU order matches: the same victim falls out next.
        assert_eq!(merged.fill(set0_line(13)), two_pass.fill(set0_line(13)));
    }
}
