//! A lightweight signature-path (SPP-style) L2 data prefetcher.
//!
//! Table 1 of the paper lists SPP [Kim et al., MICRO 2016] at the L2. Its
//! only role in the reproduced experiments is background realism: it keeps
//! the L2/LLC populated with data lines so page-walk references compete for
//! cache space the way they do in the paper's setup. We therefore implement
//! the core of SPP — per-page last-offset tracking, a delta signature, and
//! lookahead prefetch on a confident delta — without the full confidence
//! path/throttling machinery, and document that simplification in DESIGN.md.

use morrigan_types::CacheLine;
use serde::{Deserialize, Serialize};

const LINES_PER_PAGE: u64 = 64; // 4 KB page / 64 B line

/// Configuration of the L2 prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2PrefetcherConfig {
    /// Number of page trackers (fully associative, LRU by round-robin clock).
    pub trackers: usize,
    /// Maximum lookahead depth per trained access.
    pub degree: usize,
    /// Whether the prefetcher is active.
    pub enabled: bool,
}

impl Default for L2PrefetcherConfig {
    fn default() -> Self {
        Self {
            trackers: 64,
            degree: 2,
            enabled: true,
        }
    }
}

impl L2PrefetcherConfig {
    /// A disabled prefetcher (used by unit tests that need determinism).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Tracker {
    page: u64,
    last_offset: u64,
    last_delta: i64,
    confident: bool,
    lru: u64,
    valid: bool,
}

/// SPP-style stride/signature prefetcher trained on L2 data accesses.
#[derive(Debug, Clone)]
pub struct L2Prefetcher {
    cfg: L2PrefetcherConfig,
    trackers: Vec<Tracker>,
    tick: u64,
    issued: u64,
}

impl L2Prefetcher {
    /// Creates an idle prefetcher.
    pub fn new(cfg: L2PrefetcherConfig) -> Self {
        Self {
            cfg,
            trackers: vec![
                Tracker {
                    page: 0,
                    last_offset: 0,
                    last_delta: 0,
                    confident: false,
                    lru: 0,
                    valid: false,
                };
                cfg.trackers
            ],
            tick: 0,
            issued: 0,
        }
    }

    /// Number of prefetch lines issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trains on one L2 data access and returns the lines to prefetch.
    ///
    /// A delta that repeats twice for the same page becomes confident and
    /// triggers `degree` lookahead lines, clipped at the page boundary (SPP
    /// does not cross pages; that restriction is exactly why I-side page
    /// crossings need a TLB prefetcher).
    pub fn train(&mut self, line: CacheLine) -> Vec<CacheLine> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        self.tick += 1;
        let page = line.raw() / LINES_PER_PAGE;
        let offset = line.raw() % LINES_PER_PAGE;

        let slot = match self.trackers.iter().position(|t| t.valid && t.page == page) {
            Some(i) => i,
            None => {
                let i = self
                    .trackers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| if t.valid { t.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("tracker table is non-empty");
                self.trackers[i] = Tracker {
                    page,
                    last_offset: offset,
                    last_delta: 0,
                    confident: false,
                    lru: self.tick,
                    valid: true,
                };
                return Vec::new();
            }
        };

        let t = &mut self.trackers[slot];
        t.lru = self.tick;
        let delta = offset as i64 - t.last_offset as i64;
        t.confident = delta != 0 && delta == t.last_delta;
        t.last_delta = delta;
        t.last_offset = offset;

        if !t.confident {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.cfg.degree);
        let mut next = offset as i64;
        for _ in 0..self.cfg.degree {
            next += delta;
            if !(0..LINES_PER_PAGE as i64).contains(&next) {
                break;
            }
            out.push(CacheLine::new(page * LINES_PER_PAGE + next as u64));
        }
        self.issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(page: u64, offset: u64) -> CacheLine {
        CacheLine::new(page * LINES_PER_PAGE + offset)
    }

    #[test]
    fn stride_becomes_confident_after_two_repeats() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 4,
            degree: 2,
            enabled: true,
        });
        assert!(p.train(line(7, 0)).is_empty(), "first touch allocates");
        assert!(p.train(line(7, 2)).is_empty(), "first delta observed");
        let out = p.train(line(7, 4));
        assert_eq!(out, vec![line(7, 6), line(7, 8)]);
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn never_crosses_page_boundary() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 4,
            degree: 4,
            enabled: true,
        });
        p.train(line(3, 59));
        p.train(line(3, 61));
        let out = p.train(line(3, 63));
        assert!(out.is_empty(), "offset 65 would leave the page: {out:?}");
    }

    #[test]
    fn irregular_pattern_stays_quiet() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig::default());
        p.train(line(1, 0));
        p.train(line(1, 5));
        assert!(p.train(line(1, 7)).is_empty());
        assert!(p.train(line(1, 20)).is_empty());
    }

    #[test]
    fn disabled_is_inert() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig::disabled());
        for i in 0..10 {
            assert!(p.train(line(1, i * 2)).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn tracker_eviction_reuses_slots() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 2,
            degree: 1,
            enabled: true,
        });
        p.train(line(1, 0));
        p.train(line(2, 0));
        p.train(line(3, 0)); // evicts page 1
        p.train(line(1, 2)); // re-allocates page 1, no history
        assert!(
            p.train(line(1, 4)).is_empty(),
            "history was lost on eviction"
        );
        let out = p.train(line(1, 6));
        assert_eq!(out, vec![line(1, 8)]);
    }

    #[test]
    fn negative_stride_works() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 4,
            degree: 2,
            enabled: true,
        });
        p.train(line(9, 30));
        p.train(line(9, 25));
        let out = p.train(line(9, 20));
        assert_eq!(out, vec![line(9, 15), line(9, 10)]);
    }
}
