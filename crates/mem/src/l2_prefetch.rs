//! A lightweight signature-path (SPP-style) L2 data prefetcher.
//!
//! Table 1 of the paper lists SPP [Kim et al., MICRO 2016] at the L2. Its
//! only role in the reproduced experiments is background realism: it keeps
//! the L2/LLC populated with data lines so page-walk references compete for
//! cache space the way they do in the paper's setup. We therefore implement
//! the core of SPP — per-page last-offset tracking, a delta signature, and
//! lookahead prefetch on a confident delta — without the full confidence
//! path/throttling machinery, and document that simplification in DESIGN.md.

use morrigan_types::CacheLine;
use serde::{Deserialize, Serialize};

const LINES_PER_PAGE: u64 = 64; // 4 KB page / 64 B line

/// Page sentinel marking an unused tracker. Tracked pages are physical
/// line numbers shifted right by 6, so they can never reach it.
const NO_PAGE: u64 = u64::MAX;

/// Configuration of the L2 prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2PrefetcherConfig {
    /// Number of page trackers (fully associative, LRU by round-robin clock).
    pub trackers: usize,
    /// Maximum lookahead depth per trained access.
    pub degree: usize,
    /// Whether the prefetcher is active.
    pub enabled: bool,
}

impl Default for L2PrefetcherConfig {
    fn default() -> Self {
        Self {
            trackers: 64,
            degree: 2,
            enabled: true,
        }
    }
}

impl L2PrefetcherConfig {
    /// A disabled prefetcher (used by unit tests that need determinism).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// SPP-style stride/signature prefetcher trained on L2 data accesses.
///
/// Tracker state lives in parallel packed arrays (structure-of-arrays):
/// `train` runs on every L2 data access, and the page-match scan over a
/// contiguous `u64` run is what makes that affordable. An unused tracker
/// holds the [`NO_PAGE`] page and LRU stamp 0; live stamps are ≥ 1, so
/// victim selection is a single min-stamp pass preferring free slots in
/// index order, then the least-recently-used page.
#[derive(Debug, Clone)]
pub struct L2Prefetcher {
    cfg: L2PrefetcherConfig,
    pages: Vec<u64>,
    lru: Vec<u64>,
    last_offset: Vec<u8>,
    last_delta: Vec<i8>,
    tick: u64,
    issued: u64,
}

impl L2Prefetcher {
    /// Creates an idle prefetcher.
    pub fn new(cfg: L2PrefetcherConfig) -> Self {
        Self {
            cfg,
            pages: vec![NO_PAGE; cfg.trackers],
            lru: vec![0; cfg.trackers],
            last_offset: vec![0; cfg.trackers],
            last_delta: vec![0; cfg.trackers],
            tick: 0,
            issued: 0,
        }
    }

    /// Number of prefetch lines issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trains on one L2 data access, appending the lines to prefetch to
    /// `out` (which is not cleared).
    ///
    /// A delta that repeats twice for the same page becomes confident and
    /// triggers `degree` lookahead lines, clipped at the page boundary (SPP
    /// does not cross pages; that restriction is exactly why I-side page
    /// crossings need a TLB prefetcher).
    pub fn train(&mut self, line: CacheLine, out: &mut Vec<CacheLine>) {
        if !self.cfg.enabled {
            return;
        }
        self.tick += 1;
        let page = line.raw() / LINES_PER_PAGE;
        let offset = line.raw() % LINES_PER_PAGE;

        let slot = match self.pages.iter().position(|&p| p == page) {
            Some(i) => i,
            None => {
                // Free slots hold stamp 0, below every live stamp, and
                // min-by returns the first minimum — the same "first free
                // slot, else LRU" order as the per-tracker valid flag.
                let mut victim = 0;
                let mut victim_lru = self.lru[0];
                for (i, &l) in self.lru.iter().enumerate() {
                    if l < victim_lru {
                        victim_lru = l;
                        victim = i;
                    }
                }
                self.pages[victim] = page;
                self.lru[victim] = self.tick;
                self.last_offset[victim] = offset as u8;
                self.last_delta[victim] = 0;
                return;
            }
        };

        self.lru[slot] = self.tick;
        let delta = offset as i64 - self.last_offset[slot] as i64;
        let confident = delta != 0 && delta == self.last_delta[slot] as i64;
        self.last_delta[slot] = delta as i8;
        self.last_offset[slot] = offset as u8;

        if !confident {
            return;
        }
        let mut next = offset as i64;
        for _ in 0..self.cfg.degree {
            next += delta;
            if !(0..LINES_PER_PAGE as i64).contains(&next) {
                break;
            }
            out.push(CacheLine::new(page * LINES_PER_PAGE + next as u64));
            self.issued += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(page: u64, offset: u64) -> CacheLine {
        CacheLine::new(page * LINES_PER_PAGE + offset)
    }

    fn train(p: &mut L2Prefetcher, l: CacheLine) -> Vec<CacheLine> {
        let mut out = Vec::new();
        p.train(l, &mut out);
        out
    }

    #[test]
    fn stride_becomes_confident_after_two_repeats() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 4,
            degree: 2,
            enabled: true,
        });
        assert!(
            train(&mut p, line(7, 0)).is_empty(),
            "first touch allocates"
        );
        assert!(train(&mut p, line(7, 2)).is_empty(), "first delta observed");
        let out = train(&mut p, line(7, 4));
        assert_eq!(out, vec![line(7, 6), line(7, 8)]);
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn never_crosses_page_boundary() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 4,
            degree: 4,
            enabled: true,
        });
        train(&mut p, line(3, 59));
        train(&mut p, line(3, 61));
        let out = train(&mut p, line(3, 63));
        assert!(out.is_empty(), "offset 65 would leave the page: {out:?}");
    }

    #[test]
    fn irregular_pattern_stays_quiet() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig::default());
        train(&mut p, line(1, 0));
        train(&mut p, line(1, 5));
        assert!(train(&mut p, line(1, 7)).is_empty());
        assert!(train(&mut p, line(1, 20)).is_empty());
    }

    #[test]
    fn disabled_is_inert() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig::disabled());
        for i in 0..10 {
            assert!(train(&mut p, line(1, i * 2)).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn tracker_eviction_reuses_slots() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 2,
            degree: 1,
            enabled: true,
        });
        train(&mut p, line(1, 0));
        train(&mut p, line(2, 0));
        train(&mut p, line(3, 0)); // evicts page 1
        train(&mut p, line(1, 2)); // re-allocates page 1, no history
        assert!(
            train(&mut p, line(1, 4)).is_empty(),
            "history was lost on eviction"
        );
        let out = train(&mut p, line(1, 6));
        assert_eq!(out, vec![line(1, 8)]);
    }

    #[test]
    fn negative_stride_works() {
        let mut p = L2Prefetcher::new(L2PrefetcherConfig {
            trackers: 4,
            degree: 2,
            enabled: true,
        });
        train(&mut p, line(9, 30));
        train(&mut p, line(9, 25));
        let out = train(&mut p, line(9, 20));
        assert_eq!(out, vec![line(9, 15), line(9, 10)]);
    }
}
