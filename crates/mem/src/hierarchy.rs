//! The three-level cache hierarchy plus DRAM, with per-class statistics.

use morrigan_types::{CacheLine, CounterSet};
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::cache::{Cache, CacheConfig};
use crate::l2_prefetch::{L2Prefetcher, L2PrefetcherConfig};
use crate::llc::{Llc, LlcView};

/// The level of the memory hierarchy that served a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// L1 instruction cache.
    L1I,
    /// L1 data cache (also the entry point for page-walk references).
    L1D,
    /// Unified L2.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

impl MemLevel {
    /// All levels, ordered nearest to farthest.
    pub const ALL: [MemLevel; 5] = [
        MemLevel::L1I,
        MemLevel::L1D,
        MemLevel::L2,
        MemLevel::Llc,
        MemLevel::Dram,
    ];
}

/// The kind of reference, which selects the entry point into the hierarchy.
///
/// Instruction fetches enter at the L1I; data references and page-walk
/// references enter at the L1D (x86 page-table walkers read through the data
/// cache path, which is what gives PTEs the cache locality the paper's
/// walker model exploits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// Demand instruction fetch.
    IFetch,
    /// Demand load/store.
    Data,
    /// Page-table-walker reference for a demand walk.
    PageWalk,
    /// Page-table-walker reference for a prefetch walk.
    PrefetchWalk,
    /// Instruction-cache prefetch.
    IPrefetch,
}

impl AccessClass {
    fn is_instruction_side(self) -> bool {
        matches!(self, AccessClass::IFetch | AccessClass::IPrefetch)
    }
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total lookup latency in cycles, accumulated over every level probed.
    pub latency: u64,
    /// The level that finally supplied the line.
    pub served_by: MemLevel,
}

/// Geometry of the whole hierarchy (defaults reproduce Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// Flat DRAM access latency in cycles.
    pub dram_latency: u64,
    /// SPP-style L2 prefetcher configuration.
    pub l2_prefetch: L2PrefetcherConfig,
}

impl Default for HierarchyConfig {
    /// Table 1 of the paper: 32 KB/8w 4-cycle L1s, 512 KB/8w 8-cycle L2,
    /// 2 MB/16w 10-cycle LLC. The paper gives DRAM timing parameters
    /// (tRP=tRCD=tCAS=12); we fold them into a flat 120-cycle access,
    /// ChampSim's effective round-trip at core frequency.
    fn default() -> Self {
        Self {
            l1i: CacheConfig::from_capacity(32 * 1024, 8, 4),
            l1d: CacheConfig::from_capacity(32 * 1024, 8, 4),
            l2: CacheConfig::from_capacity(512 * 1024, 8, 8),
            llc: CacheConfig::from_capacity(2 * 1024 * 1024, 16, 10),
            dram_latency: 120,
            l2_prefetch: L2PrefetcherConfig::default(),
        }
    }
}

/// Hit/served counters for one hierarchy level, per access class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// References served by this level on the instruction-fetch path.
    pub ifetch: u64,
    /// References served by this level on the data path.
    pub data: u64,
    /// Demand page-walk references served by this level.
    pub demand_walk: u64,
    /// Prefetch page-walk references served by this level.
    pub prefetch_walk: u64,
    /// I-cache prefetch references served by this level.
    pub iprefetch: u64,
}

impl std::ops::Sub for LevelStats {
    type Output = LevelStats;

    /// Field-wise difference, used to isolate the measurement window from
    /// warmup (`end_snapshot - start_snapshot`).
    fn sub(self, rhs: LevelStats) -> LevelStats {
        LevelStats {
            ifetch: self.ifetch - rhs.ifetch,
            data: self.data - rhs.data,
            demand_walk: self.demand_walk - rhs.demand_walk,
            prefetch_walk: self.prefetch_walk - rhs.prefetch_walk,
            iprefetch: self.iprefetch - rhs.iprefetch,
        }
    }
}

impl std::ops::Add for LevelStats {
    type Output = LevelStats;

    /// Field-wise sum, the inverse of [`Sub`](std::ops::Sub): summing the
    /// interval sampler's epoch deltas reconstitutes the window totals.
    fn add(self, rhs: LevelStats) -> LevelStats {
        LevelStats {
            ifetch: self.ifetch + rhs.ifetch,
            data: self.data + rhs.data,
            demand_walk: self.demand_walk + rhs.demand_walk,
            prefetch_walk: self.prefetch_walk + rhs.prefetch_walk,
            iprefetch: self.iprefetch + rhs.iprefetch,
        }
    }
}

impl CounterSet for LevelStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ifetch", self.ifetch),
            ("data", self.data),
            ("demand_walk", self.demand_walk),
            ("prefetch_walk", self.prefetch_walk),
            ("iprefetch", self.iprefetch),
        ]
    }
}

impl LevelStats {
    fn bump(&mut self, class: AccessClass) {
        match class {
            AccessClass::IFetch => self.ifetch += 1,
            AccessClass::Data => self.data += 1,
            AccessClass::PageWalk => self.demand_walk += 1,
            AccessClass::PrefetchWalk => self.prefetch_walk += 1,
            AccessClass::IPrefetch => self.iprefetch += 1,
        }
    }

    /// Total references served by this level across all classes.
    pub fn total(&self) -> u64 {
        self.ifetch + self.data + self.demand_walk + self.prefetch_walk + self.iprefetch
    }
}

/// The full cache hierarchy + DRAM.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    /// Single-bank by default; the multi-core machine either swaps a
    /// shared, multi-bank [`Llc`] in and out around each core's step
    /// (`cores == 1`, see [`MemoryHierarchy::swap_llc`]) or routes LLC
    /// traffic through an epoch-buffered [`LlcView`] instead
    /// (`cores > 1`, see [`MemoryHierarchy::install_llc_view`]).
    llc: Llc,
    /// When installed, LLC probes/fills bypass `llc` and go through the
    /// epoch-frozen shared view (parallel machine mode).
    llc_view: Option<LlcView>,
    cfg: HierarchyConfig,
    l2_prefetcher: L2Prefetcher,
    /// Reused between [`MemoryHierarchy::access`] calls so the prefetcher
    /// train path never allocates.
    l2_pref_scratch: Vec<CacheLine>,
    served: [LevelStats; 5],
    /// Demand I-fetch lookups that missed the L1I (for MPKI accounting).
    pub l1i_demand_misses: u64,
    /// Demand I-fetch lookups (for MPKI accounting).
    pub l1i_demand_accesses: u64,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            llc: Llc::new(cfg.llc, 1),
            llc_view: None,
            l2_prefetcher: L2Prefetcher::new(cfg.l2_prefetch),
            l2_pref_scratch: Vec::with_capacity(8),
            cfg,
            served: [LevelStats::default(); 5],
            l1i_demand_misses: 0,
            l1i_demand_accesses: 0,
        }
    }

    /// This hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Performs one reference of class `class` for physical line `line`.
    ///
    /// Probes level by level starting at the class's entry point, charges
    /// each probed level's latency, and fills the line into every probed
    /// level on the way back (inclusive allocation).
    pub fn access(&mut self, line: CacheLine, class: AccessClass) -> AccessOutcome {
        let mut latency = 0;
        let instruction_side = class.is_instruction_side();

        // L1.
        if instruction_side {
            latency += self.cfg.l1i.latency;
            if class == AccessClass::IFetch {
                self.l1i_demand_accesses += 1;
            }
            if self.l1i.probe(line) {
                self.record(MemLevel::L1I, class);
                return AccessOutcome {
                    latency,
                    served_by: MemLevel::L1I,
                };
            }
            if class == AccessClass::IFetch {
                self.l1i_demand_misses += 1;
            }
        } else {
            latency += self.cfg.l1d.latency;
            if self.l1d.probe(line) {
                self.record(MemLevel::L1D, class);
                return AccessOutcome {
                    latency,
                    served_by: MemLevel::L1D,
                };
            }
        }

        // L2 (shared). Data-side L2 traffic trains the SPP-style prefetcher.
        latency += self.cfg.l2.latency;
        let l2_hit = self.l2.probe(line);
        if matches!(class, AccessClass::Data) {
            self.l2_pref_scratch.clear();
            self.l2_prefetcher.train(line, &mut self.l2_pref_scratch);
            for i in 0..self.l2_pref_scratch.len() {
                // L2 prefetches fill L2 (and LLC for inclusion) silently.
                let pf = self.l2_pref_scratch[i];
                self.l2.fill(pf);
                self.llc_fill(pf);
            }
        }
        if l2_hit {
            self.fill_l1(line, instruction_side);
            self.record(MemLevel::L2, class);
            return AccessOutcome {
                latency,
                served_by: MemLevel::L2,
            };
        }

        // LLC.
        latency += self.cfg.llc.latency;
        if self.llc_probe(line) {
            self.l2.fill(line);
            self.fill_l1(line, instruction_side);
            self.record(MemLevel::Llc, class);
            return AccessOutcome {
                latency,
                served_by: MemLevel::Llc,
            };
        }

        // DRAM.
        latency += self.cfg.dram_latency;
        self.llc_fill(line);
        self.l2.fill(line);
        self.fill_l1(line, instruction_side);
        self.record(MemLevel::Dram, class);
        AccessOutcome {
            latency,
            served_by: MemLevel::Dram,
        }
    }

    /// Functionally warms the hierarchy for `line`: the sampled
    /// fast-forward's cache warming, with no latency computed and no
    /// statistics recorded. Each level uses one merged
    /// [`Cache::warm_fill`] scan — promote on hit, install as MRU on a
    /// miss — stopping at the first hit, so the final residency matches
    /// what a demand [`MemoryHierarchy::access`] would have left behind
    /// and detail windows open onto the replacement state a continuous
    /// run would have instead of a frozen snapshot.
    ///
    /// The warm is deliberately **full-depth and symmetric** (both
    /// sides, all levels, the whole skip stretch). Every cheaper
    /// variant was measured and rejected: L1-only warming left the
    /// frozen-window bias in place (the SPEC frontend figure *worsened*
    /// from +6.4 % to +7.6 % sampled IPC error), warming only the tail
    /// of each skip stretch (2 k–12.5 k instructions) still read
    /// +4–6 % there because that figure's reuse distances span the
    /// whole stretch, and instruction-side-only warming biased *every*
    /// figure by +3–12 % — unrefreshed data lines age out under
    /// one-sided fill pressure. Full warming brings the worst per-figure
    /// deviation to ≈2.7 % and the SPEC figure to +0.03 %, at the cost
    /// of roughly a third of the sampled run (the L2/LLC tag+stamp
    /// arrays are host-cache-cold on every scan); EXPERIMENTS.md tracks
    /// the resulting sampled-speedup floor. The served/miss counters
    /// stay detail-window samples for the extrapolation layer, and the
    /// L2 prefetcher is neither trained nor credited. The fast-forward
    /// paths honour `MORRIGAN_NO_FF_WARM=1` as an ablation switch that
    /// reproduces the pre-warming sampled numbers.
    pub fn warm(&mut self, line: CacheLine, instruction_side: bool) {
        let l1_hit = if instruction_side {
            self.l1i.warm_fill(line)
        } else {
            self.l1d.warm_fill(line)
        };
        if l1_hit {
            return;
        }
        if self.l2.warm_fill(line) {
            return;
        }
        if !self.llc_probe(line) {
            self.llc_fill(line);
        }
    }

    /// LLC probe, routed through the epoch view when one is installed.
    #[inline]
    fn llc_probe(&mut self, line: CacheLine) -> bool {
        match &mut self.llc_view {
            Some(view) => view.probe(line),
            None => self.llc.probe(line),
        }
    }

    /// LLC fill, routed through the epoch view when one is installed.
    #[inline]
    fn llc_fill(&mut self, line: CacheLine) {
        match &mut self.llc_view {
            Some(view) => view.fill(line),
            None => self.llc.fill(line),
        }
    }

    fn fill_l1(&mut self, line: CacheLine, instruction_side: bool) {
        if instruction_side {
            self.l1i.fill(line);
        } else {
            self.l1d.fill(line);
        }
    }

    fn record(&mut self, level: MemLevel, class: AccessClass) {
        self.served[level as usize].bump(class);
    }

    /// Whether `line` is resident in the L1I (used by the front end to skip
    /// redundant I-prefetches).
    pub fn l1i_contains(&self, line: CacheLine) -> bool {
        self.l1i.contains(line)
    }

    /// Software-prefetches the L1I tag array of the set the *next*
    /// sequential line maps to. The fast-forward front end nearly always
    /// probes `line + 1` next (straight-line fetch), so pulling that
    /// set's tags into the host cache hides the SoA scan's memory
    /// latency; it is a host-side hint with no architectural effect.
    #[inline]
    pub fn prefetch_next_ifetch_set(&self, line: CacheLine) {
        self.l1i.prefetch_set(CacheLine::new(line.raw() + 1));
    }

    /// Exchanges this hierarchy's LLC with `other`.
    ///
    /// The multi-core machine owns the one shared (possibly multi-bank)
    /// LLC and swaps it into the active core's hierarchy around each
    /// step, so every core's misses land in the same structure while the
    /// single-core access path stays free of indirection.
    pub fn swap_llc(&mut self, other: &mut Llc) {
        std::mem::swap(&mut self.llc, other);
    }

    /// The LLC (shared-structure occupancy auditing).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Routes this hierarchy's LLC traffic through an epoch-frozen view
    /// of `shared` (parallel-machine mode). The private `llc` stays
    /// empty and untouched; [`MemoryHierarchy::llc_view_mut`] hands the
    /// machine the buffered operations to replay at each barrier.
    pub fn install_llc_view(&mut self, shared: Arc<Llc>) {
        self.llc_view = Some(LlcView::new(shared));
    }

    /// The installed epoch view, if any (the machine drains its logs at
    /// each epoch barrier).
    pub fn llc_view_mut(&mut self) -> Option<&mut LlcView> {
        self.llc_view.as_mut()
    }

    /// References served by `level`, broken down by class.
    pub fn served_by(&self, level: MemLevel) -> LevelStats {
        self.served[level as usize]
    }

    /// Sum of page-walk references (demand + prefetch) served by each level,
    /// ordered `[L1D-or-L1I, L2, LLC, DRAM]` as Fig 16's analysis reports.
    pub fn walk_refs_by_level(&self) -> [u64; 4] {
        let s = |l: MemLevel| {
            let st = self.served_by(l);
            st.demand_walk + st.prefetch_walk
        };
        [
            s(MemLevel::L1I) + s(MemLevel::L1D),
            s(MemLevel::L2),
            s(MemLevel::Llc),
            s(MemLevel::Dram),
        ]
    }

    /// Lines the L2 prefetcher has issued so far.
    pub fn l2_prefetches_issued(&self) -> u64 {
        self.l2_prefetcher.issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            l1i: CacheConfig {
                sets: 4,
                ways: 2,
                latency: 4,
            },
            l1d: CacheConfig {
                sets: 4,
                ways: 2,
                latency: 4,
            },
            l2: CacheConfig {
                sets: 16,
                ways: 4,
                latency: 8,
            },
            llc: CacheConfig {
                sets: 64,
                ways: 4,
                latency: 10,
            },
            dram_latency: 120,
            l2_prefetch: L2PrefetcherConfig::disabled(),
        })
    }

    #[test]
    fn cold_miss_goes_to_dram_and_fills_everything() {
        let mut m = small();
        let line = CacheLine::new(0x1000);
        let out = m.access(line, AccessClass::Data);
        assert_eq!(out.served_by, MemLevel::Dram);
        assert_eq!(out.latency, 4 + 8 + 10 + 120);
        let again = m.access(line, AccessClass::Data);
        assert_eq!(again.served_by, MemLevel::L1D);
        assert_eq!(again.latency, 4);
    }

    #[test]
    fn instruction_and_data_paths_are_split_at_l1() {
        let mut m = small();
        let line = CacheLine::new(0x2000);
        m.access(line, AccessClass::Data);
        // Data fill does not populate L1I; an I-fetch hits at L2.
        let out = m.access(line, AccessClass::IFetch);
        assert_eq!(out.served_by, MemLevel::L2);
        // ...and fills the L1I on the way back.
        let out = m.access(line, AccessClass::IFetch);
        assert_eq!(out.served_by, MemLevel::L1I);
    }

    #[test]
    fn page_walks_enter_at_l1d() {
        let mut m = small();
        let line = CacheLine::new(0x3000);
        m.access(line, AccessClass::PageWalk);
        let out = m.access(line, AccessClass::Data);
        assert_eq!(
            out.served_by,
            MemLevel::L1D,
            "walk fills should be visible to loads"
        );
    }

    #[test]
    fn stats_attribute_by_class_and_level() {
        let mut m = small();
        let line = CacheLine::new(0x4000);
        m.access(line, AccessClass::PrefetchWalk); // DRAM
        m.access(line, AccessClass::PageWalk); // L1D
        assert_eq!(m.served_by(MemLevel::Dram).prefetch_walk, 1);
        assert_eq!(m.served_by(MemLevel::L1D).demand_walk, 1);
        assert_eq!(m.walk_refs_by_level(), [1, 0, 0, 1]);
    }

    #[test]
    fn l1i_demand_miss_accounting_ignores_prefetches() {
        let mut m = small();
        let line = CacheLine::new(0x5000);
        m.access(line, AccessClass::IPrefetch);
        assert_eq!(m.l1i_demand_accesses, 0);
        let out = m.access(line, AccessClass::IFetch);
        assert_eq!(
            out.served_by,
            MemLevel::L1I,
            "prefetch should have filled L1I"
        );
        assert_eq!(m.l1i_demand_accesses, 1);
        assert_eq!(m.l1i_demand_misses, 0);
    }

    #[test]
    fn default_config_matches_table1() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(cfg.llc.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.l1i.ways, 8);
        assert_eq!(cfg.llc.ways, 16);
    }
}
