//! Headline-shape regression tests: the qualitative results the paper's
//! story rests on, measured end-to-end at a moderate scale.
//!
//! These are `#[ignore]`d in debug builds (they need trained prediction
//! tables); run them with `cargo test --release`.

use morrigan_suite::experiments::common::{run_server, PrefetcherKind, Scale};
use morrigan_suite::sim::SystemConfig;
use morrigan_suite::types::prefetcher::NullPrefetcher;
use morrigan_suite::types::stats::geometric_mean;

fn measure(kinds: &[PrefetcherKind]) -> Vec<(String, f64, f64)> {
    let scale = Scale {
        warmup: 1_000_000,
        measure: 3_000_000,
        workloads: 4,
        smt_pairs: 1,
    };
    let suite = scale.suite();
    let baselines: Vec<_> = suite
        .iter()
        .map(|cfg| {
            run_server(
                cfg,
                SystemConfig::default(),
                scale.sim(),
                Box::new(NullPrefetcher),
            )
        })
        .collect();
    kinds
        .iter()
        .map(|&kind| {
            let mut speedups = Vec::new();
            let mut coverage = 0.0;
            for (cfg, base) in suite.iter().zip(&baselines) {
                let m = run_server(cfg, SystemConfig::default(), scale.sim(), kind.build());
                speedups.push(m.speedup_over(base));
                coverage += m.coverage() / suite.len() as f64;
            }
            (kind.name().to_string(), geometric_mean(&speedups), coverage)
        })
        .collect()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
fn headline_morrigan_beats_every_prior_dstlb_prefetcher() {
    let rows = measure(&[
        PrefetcherKind::Sp,
        PrefetcherKind::AspIso,
        PrefetcherKind::MpIso,
        PrefetcherKind::Morrigan,
    ]);
    let morrigan = rows.last().expect("morrigan last");
    for row in &rows[..rows.len() - 1] {
        assert!(
            morrigan.1 >= row.1 - 0.003,
            "morrigan ({:.4}) must beat {} ({:.4})",
            morrigan.1,
            row.0,
            row.1
        );
        assert!(
            morrigan.2 > row.2,
            "morrigan must have the highest coverage: {rows:?}"
        );
    }
    assert!(morrigan.1 > 1.01, "morrigan gains >1%: {rows:?}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
fn headline_morrigan_eliminates_demand_walk_references() {
    let scale = Scale {
        warmup: 1_000_000,
        measure: 3_000_000,
        workloads: 4,
        smt_pairs: 1,
    };
    let suite = scale.suite();
    let mut base_refs = 0u64;
    let mut morrigan_refs = 0u64;
    for cfg in &suite {
        let base = run_server(
            cfg,
            SystemConfig::default(),
            scale.sim(),
            Box::new(NullPrefetcher),
        );
        let m = run_server(
            cfg,
            SystemConfig::default(),
            scale.sim(),
            PrefetcherKind::Morrigan.build(),
        );
        base_refs += base.demand_instr_walk_refs();
        morrigan_refs += m.demand_instr_walk_refs();
    }
    let reduction = 1.0 - morrigan_refs as f64 / base_refs as f64;
    // The paper reports 69 %; the synthetic substrate attenuates this (see
    // EXPERIMENTS.md) but the reduction must be substantial.
    assert!(reduction > 0.15, "demand walk-ref reduction {reduction:.3}");
}
