//! Headline-shape regression tests: the qualitative results the paper's
//! story rests on, measured end-to-end at a moderate scale.
//!
//! These are `#[ignore]`d in debug builds (they need trained prediction
//! tables); run them with `cargo test --release`.

use morrigan_suite::experiments::common::{
    baseline_spec, server_spec, PrefetcherKind, RunSpec, Runner, Scale,
};
use morrigan_suite::types::stats::geometric_mean;

fn shape_scale() -> Scale {
    Scale {
        warmup: 1_000_000,
        measure: 3_000_000,
        workloads: 4,
        smt_pairs: 1,
        cores: 2,
        tenants: 2,
    }
}

fn measure(kinds: &[PrefetcherKind]) -> Vec<(String, f64, f64)> {
    let scale = shape_scale();
    let suite = scale.suite();
    let n = suite.len();
    let runner = Runner::new(4);

    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, &scale)).collect();
    for &kind in kinds {
        specs.extend(suite.iter().map(|cfg| server_spec(cfg, &scale, kind)));
    }
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    kinds
        .iter()
        .enumerate()
        .map(|(k, kind)| {
            let chunk = &records[n * (k + 1)..n * (k + 2)];
            let speedups: Vec<f64> = chunk
                .iter()
                .zip(baselines)
                .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
                .collect();
            let coverage = chunk
                .iter()
                .map(|record| record.metrics.coverage())
                .sum::<f64>()
                / n as f64;
            (kind.name().to_string(), geometric_mean(&speedups), coverage)
        })
        .collect()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
fn headline_morrigan_beats_every_prior_dstlb_prefetcher() {
    let rows = measure(&[
        PrefetcherKind::Sp,
        PrefetcherKind::AspIso,
        PrefetcherKind::MpIso,
        PrefetcherKind::Morrigan,
    ]);
    let morrigan = rows.last().expect("morrigan last");
    for row in &rows[..rows.len() - 1] {
        assert!(
            morrigan.1 >= row.1 - 0.003,
            "morrigan ({:.4}) must beat {} ({:.4})",
            morrigan.1,
            row.0,
            row.1
        );
        assert!(
            morrigan.2 > row.2,
            "morrigan must have the highest coverage: {rows:?}"
        );
    }
    assert!(morrigan.1 > 1.01, "morrigan gains >1%: {rows:?}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "needs trained tables; run with --release")]
fn headline_morrigan_eliminates_demand_walk_references() {
    let scale = shape_scale();
    let suite = scale.suite();
    let n = suite.len();
    let runner = Runner::new(4);

    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, &scale)).collect();
    specs.extend(
        suite
            .iter()
            .map(|cfg| server_spec(cfg, &scale, PrefetcherKind::Morrigan)),
    );
    let records = runner.run_batch(&specs);

    let base_refs: u64 = records[..n]
        .iter()
        .map(|record| record.metrics.demand_instr_walk_refs())
        .sum();
    let morrigan_refs: u64 = records[n..]
        .iter()
        .map(|record| record.metrics.demand_instr_walk_refs())
        .sum();
    let reduction = 1.0 - morrigan_refs as f64 / base_refs as f64;
    // The paper reports 69 %; the synthetic substrate attenuates this (see
    // EXPERIMENTS.md) but the reduction must be substantial.
    assert!(reduction > 0.15, "demand walk-ref reduction {reduction:.3}");
}
