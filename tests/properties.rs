//! Cross-crate property-based tests (proptest) on the invariants the
//! simulator's correctness rests on.

use morrigan_suite::mem::{Cache, CacheConfig};
use morrigan_suite::prefetcher::{Irip, IripConfig, Morrigan, MorriganConfig};
use morrigan_suite::types::{
    CacheLine, MissContext, PhysPage, PrefetchComponent, ThreadId, TlbPrefetcher, VirtAddr,
    VirtPage,
};
use morrigan_suite::vm::{PageTable, PrefetchBuffer, Tlb, TlbConfig};
use morrigan_suite::workloads::{InstructionStream, ServerWorkload, ServerWorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never exceeds its capacity and a filled line is resident
    /// until something in its set evicts it.
    #[test]
    fn cache_capacity_is_bounded(lines in prop::collection::vec(0u64..4096, 1..300)) {
        let cfg = CacheConfig { sets: 16, ways: 4, latency: 1 };
        let mut cache = Cache::new(cfg);
        for &line in &lines {
            let line = CacheLine::new(line);
            cache.fill(line);
            prop_assert!(cache.contains(line), "a just-filled line must be resident");
            prop_assert!(cache.occupancy() <= 64, "occupancy above capacity");
        }
    }

    /// TLB lookups agree with inserts: after inserting (vpn → pfn), a
    /// lookup either returns exactly that pfn or misses (evicted) — never
    /// a wrong translation.
    #[test]
    fn tlb_never_returns_a_wrong_translation(
        ops in prop::collection::vec((0u64..512, 0u64..64), 1..400)
    ) {
        let mut tlb = Tlb::new(TlbConfig { entries: 16, ways: 4, latency: 1 });
        let mut truth = std::collections::HashMap::new();
        for &(vpn_raw, pfn_raw) in &ops {
            let vpn = VirtPage::new(vpn_raw);
            let pfn = PhysPage::new(0x1000 + pfn_raw);
            tlb.insert(vpn, pfn, true);
            truth.insert(vpn, pfn);
            if let Some(found) = tlb.lookup(vpn) {
                prop_assert_eq!(found, *truth.get(&vpn).expect("inserted"), "stale translation");
            }
        }
    }

    /// The prefetch buffer never exceeds capacity and `take` removes.
    #[test]
    fn prefetch_buffer_capacity_and_take(
        vpns in prop::collection::vec(0u64..128, 1..300)
    ) {
        let mut pb = PrefetchBuffer::new(16, 2);
        for &v in &vpns {
            pb.insert(VirtPage::new(v), PhysPage::new(v + 1), 0, None, PrefetchComponent::Other);
            prop_assert!(pb.len() <= 16);
        }
        for &v in &vpns {
            if pb.take(VirtPage::new(v), 0).is_some() {
                prop_assert!(pb.take(VirtPage::new(v), 0).is_none(), "double take");
            }
        }
        prop_assert!(pb.is_empty(), "all entries taken or evicted");
    }

    /// Page-table translations are stable and walk steps deterministic.
    #[test]
    fn page_table_translation_is_a_function(vpns in prop::collection::vec(0u64..100_000, 1..64)) {
        let mut pt = PageTable::new(9);
        for &v in &vpns {
            pt.map(VirtPage::new(v));
        }
        for &v in &vpns {
            let vpn = VirtPage::new(v);
            prop_assert_eq!(pt.translate(vpn), pt.translate(vpn));
            prop_assert_eq!(pt.walk_steps(vpn), pt.walk_steps(vpn));
            // Leaf PTE line sharing: vpn and vpn^7... neighbors within the
            // same aligned group of 8 share a cache line.
            let buddy = VirtPage::new((v & !7) | ((v + 1) & 7));
            prop_assert_eq!(
                pt.leaf_pte_addr(vpn).cache_line(),
                pt.leaf_pte_addr(buddy).cache_line(),
                "PTEs of an aligned 8-page group share one line"
            );
        }
    }

    /// IRIP's cardinal invariant: a page lives in at most one prediction
    /// table, and total occupancy never exceeds the configured capacity.
    #[test]
    fn irip_entry_lives_in_one_table(
        misses in prop::collection::vec(0u64..200, 2..500)
    ) {
        let mut irip = Irip::new(IripConfig::default());
        let capacity: usize = IripConfig::default().tables.iter().map(|t| t.entries).sum();
        let mut out = Vec::new();
        let mut prev = None;
        for &m in &misses {
            out.clear();
            let vpn = VirtPage::new(m);
            irip.observe(vpn, prev, true, &mut out);
            prev = Some(vpn);
            prop_assert!(irip.occupancy() <= capacity);
            // `table_of` uses the first match; verify the page is found in
            // a single table by checking prediction consistency.
            if let Some(t) = irip.table_of(vpn) {
                prop_assert!(t < 4);
            }
        }
    }

    /// Morrigan always produces at least one prefetch per miss (SDP backs
    /// IRIP up), and never a prefetch of the missing page itself.
    #[test]
    fn morrigan_always_prefetches_something(
        misses in prop::collection::vec(0u64..500, 1..300)
    ) {
        let mut m = Morrigan::new(MorriganConfig::default());
        let mut out = Vec::new();
        for &page in &misses {
            out.clear();
            let ctx = MissContext {
                vpn: VirtPage::new(page),
                pc: VirtAddr::new(page << 12),
                thread: ThreadId::ZERO,
                pb_hit: false,
                cycle: 0,
            };
            m.on_stlb_miss(&ctx, &mut out);
            prop_assert!(!out.is_empty(), "composite design covers every miss");
            prop_assert!(out.iter().all(|d| d.vpn != ctx.vpn), "no self-prefetch");
        }
    }

    /// Workload streams are pure functions of their configuration.
    #[test]
    fn server_workload_replays(seed in 0u64..1000) {
        let cfg = ServerWorkloadConfig::qmm_like("prop", seed);
        let mut a = ServerWorkload::new(cfg.clone());
        let mut b = ServerWorkload::new(cfg);
        for _ in 0..2000 {
            prop_assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }
}
