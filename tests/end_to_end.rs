//! Cross-crate integration tests: whole-system runs through the public
//! facade, exercising every prefetcher and checking the invariants that
//! must hold regardless of calibration.

use morrigan_suite::experiments::common::{PrefetcherKind, RunSpec, Runner, Scale};
use morrigan_suite::sim::{Metrics, SimConfig, Simulator, SystemConfig};
use morrigan_suite::types::prefetcher::NullPrefetcher;
use morrigan_suite::workloads::{ServerWorkload, ServerWorkloadConfig};

fn quick() -> SimConfig {
    SimConfig {
        warmup_instructions: 100_000,
        measure_instructions: 300_000,
    }
}

fn workload(seed: u64) -> ServerWorkloadConfig {
    ServerWorkloadConfig::qmm_like(format!("it-{seed}"), seed)
}

fn run_server(cfg: &ServerWorkloadConfig, system: SystemConfig, kind: PrefetcherKind) -> Metrics {
    RunSpec::server(cfg, system, quick(), kind)
        .execute()
        .metrics
}

#[test]
fn every_prefetcher_runs_end_to_end() {
    let cfg = workload(1);
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Sp,
        PrefetcherKind::Asp,
        PrefetcherKind::Dp,
        PrefetcherKind::Mp,
        PrefetcherKind::AspIso,
        PrefetcherKind::DpIso,
        PrefetcherKind::MpIso,
        PrefetcherKind::MpUnbounded2,
        PrefetcherKind::MpUnboundedInf,
        PrefetcherKind::Morrigan,
        PrefetcherKind::MorriganMono,
    ] {
        let m = run_server(&cfg, SystemConfig::default(), kind);
        assert_eq!(m.instructions, 300_000, "{}", kind.name());
        assert!(
            m.ipc() > 0.05 && m.ipc() <= 4.0,
            "{} ipc {}",
            kind.name(),
            m.ipc()
        );
        // Conservation: covered misses cannot exceed misses.
        assert!(m.mmu.istlb_covered <= m.mmu.istlb_misses, "{}", kind.name());
        assert!(
            m.mmu.istlb_covered_late <= m.mmu.istlb_covered,
            "{}",
            kind.name()
        );
    }
}

#[test]
fn covered_misses_match_eliminated_walks() {
    // iSTLB misses = covered (PB hits) + demand walks, exactly. This test
    // needs the simulator instance afterwards, so it drives the simulator
    // directly instead of going through a spec.
    let cfg = workload(2);
    let mut sim = Simulator::new_smt(
        SystemConfig::default(),
        vec![Box::new(ServerWorkload::new(cfg))],
        PrefetcherKind::Morrigan.build(),
    );
    let m = sim.run(quick());
    assert_eq!(
        m.mmu.istlb_misses,
        m.mmu.istlb_covered + m.walker.demand_instr_walks,
        "misses must split into covered + walked"
    );
    // PB accounting is consistent with MMU accounting.
    let pb = sim.mmu().prefetch_buffer();
    assert_eq!(pb.stats.hits(), sim.mmu().stats.istlb_covered);
}

#[test]
fn simulator_refuses_to_run_twice() {
    let cfg = workload(2);
    let mut sim = Simulator::new_smt(
        SystemConfig::default(),
        vec![Box::new(ServerWorkload::new(cfg))],
        Box::new(NullPrefetcher),
    );
    let tiny = SimConfig {
        warmup_instructions: 1_000,
        measure_instructions: 2_000,
    };
    let _ = sim.run(tiny);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(tiny)));
    assert!(panic.is_err(), "a second run() must panic");
}

#[test]
fn walk_reference_accounting_is_consistent() {
    let cfg = workload(3);
    let m = run_server(&cfg, SystemConfig::default(), PrefetcherKind::Morrigan);
    // Every walk performs 1..=4 references.
    let walks = m.walker.demand_instr_walks + m.walker.demand_data_walks + m.walker.prefetch_walks;
    let refs = m.walker.demand_instr_refs + m.walker.demand_data_refs + m.walker.prefetch_refs;
    assert!(refs >= walks, "at least one reference per walk");
    assert!(refs <= 4 * walks, "at most four references per walk");
    // The per-level breakdown sums to the total walk references.
    let by_level: u64 = m.walk_refs_by_level.iter().sum();
    assert_eq!(by_level, refs);
}

#[test]
fn simulation_is_deterministic_across_repetitions() {
    let cfg = workload(4);
    let a = run_server(&cfg, SystemConfig::default(), PrefetcherKind::Morrigan);
    let b = run_server(&cfg, SystemConfig::default(), PrefetcherKind::Morrigan);
    assert_eq!(a, b, "same seed + config must replay bit-for-bit");
}

#[test]
fn runner_batches_match_direct_execution() {
    // The pooled, cached path must return byte-identical metrics to
    // executing the spec inline.
    let cfg = workload(4);
    let spec = RunSpec::server(
        &cfg,
        SystemConfig::default(),
        quick(),
        PrefetcherKind::Morrigan,
    );
    let direct = spec.execute().metrics;
    let runner = Runner::new(2);
    let pooled = runner.run_one(&spec);
    assert_eq!(direct, pooled.metrics);
}

#[test]
fn warmup_isolation_counts_only_measurement_window() {
    let cfg = workload(5);
    let short = RunSpec::server(
        &cfg,
        SystemConfig::default(),
        SimConfig {
            warmup_instructions: 200_000,
            measure_instructions: 100_000,
        },
        PrefetcherKind::None,
    )
    .execute()
    .metrics;
    assert_eq!(short.instructions, 100_000);
    assert!(
        short.mmu.instr_translations <= 100_000,
        "only the window is counted"
    );
}

#[test]
fn smt_round_robin_interleaves_both_threads() {
    let pairs = morrigan_suite::workloads::suites::smt_pairs(1);
    let pair = pairs.into_iter().next().expect("one pair");
    let m = RunSpec::smt(
        &pair,
        SystemConfig::default(),
        quick(),
        PrefetcherKind::None,
    )
    .execute()
    .metrics;
    // Both address spaces must appear in the translation stream: with
    // disjoint code regions, instruction translations far exceed what one
    // thread could produce in half the instructions... simplest check:
    // the run retires the full instruction budget and misses occur.
    assert_eq!(m.instructions, 300_000);
    assert!(m.mmu.istlb_misses > 0);
}

#[test]
fn perfect_istlb_dominates_all_real_prefetchers() {
    let cfg = workload(6);
    let base = run_server(&cfg, SystemConfig::default(), PrefetcherKind::None);
    let mut perfect_system = SystemConfig::default();
    perfect_system.mmu.perfect_istlb = true;
    let perfect = run_server(&cfg, perfect_system, PrefetcherKind::None);
    let morrigan = run_server(&cfg, SystemConfig::default(), PrefetcherKind::Morrigan);
    assert!(perfect.ipc() >= base.ipc());
    assert!(
        perfect.ipc() * 1.002 >= morrigan.ipc(),
        "perfect is an upper bound (within noise)"
    );
}

#[test]
fn facade_reexports_are_usable() {
    use morrigan_suite::types::TlbPrefetcher;
    let p = morrigan_suite::prefetcher::Morrigan::new(Default::default());
    assert_eq!(p.name(), "morrigan");
    let _ = morrigan_suite::baselines::SequentialPrefetcher::new();
    let _ = morrigan_suite::icache::NextLinePrefetcher::new();
    let _ = morrigan_suite::mem::MemoryHierarchy::new(Default::default());
    let _ = Scale::test();
    let _ = morrigan_suite::runner::Runner::new(1);
}
