//! # morrigan-suite
//!
//! A from-scratch Rust reproduction of *Morrigan: A Composite Instruction
//! TLB Prefetcher* (Vavouliotis, Alvarez, Grot, Jiménez, Casas — MICRO
//! 2021), including the prefetcher, every baseline it is compared against,
//! the complete ChampSim-like simulation substrate, and a per-figure
//! experiment harness.
//!
//! This facade crate re-exports the workspace's public API under stable
//! paths. Start with [`sim::Simulator`] to run a workload, or
//! [`prefetcher::Morrigan`] to use the prefetcher standalone on a miss
//! stream you drive yourself.
//!
//! ## Crate map
//!
//! * [`types`] — addresses, pages, RNG, statistics, prefetcher interface
//! * [`mem`] — cache hierarchy + DRAM
//! * [`vm`] — page table, walker, PSCs, TLBs, prefetch buffer, MMU
//! * [`prefetcher`] — Morrigan itself (IRIP + SDP + RLFU)
//! * [`baselines`] — SP, ASP, DP, MP, Morrigan-mono, unbounded Markov
//! * [`icache`] — next-line and FNL+MMA-style I-cache prefetchers
//! * [`workloads`] — synthetic server/SPEC trace generators
//! * [`sim`] — the interval core model + SMT mode
//! * [`runner`] — declarative job specs, worker pool, result cache
//! * [`experiments`] — one runner per paper figure
//!
//! ## Quickstart
//!
//! ```
//! use morrigan_suite::prefetcher::{Morrigan, MorriganConfig};
//! use morrigan_suite::types::TlbPrefetcher;
//!
//! let morrigan = Morrigan::new(MorriganConfig::default());
//! // ~3.76 KB of prediction state, the paper's chosen budget (§6.1.3).
//! assert!(morrigan.storage_bits() / 8 < 4 * 1024);
//! ```

pub use morrigan as prefetcher;
pub use morrigan_baselines as baselines;
pub use morrigan_experiments as experiments;
pub use morrigan_icache as icache;
pub use morrigan_mem as mem;
pub use morrigan_runner as runner;
pub use morrigan_sim as sim;
pub use morrigan_types as types;
pub use morrigan_vm as vm;
pub use morrigan_workloads as workloads;
