//! SMT colocation: two server workloads share one core, its TLBs, caches,
//! page-table walker, and Morrigan's (doubled) prediction tables — the
//! paper's §6.6 setup.
//!
//! ```text
//! cargo run --release --example smt_colocation
//! ```

use morrigan_suite::prefetcher::{Morrigan, MorriganConfig};
use morrigan_suite::runner::{PrefetcherKind, RunSpec, Runner};
use morrigan_suite::sim::{SimConfig, SystemConfig};
use morrigan_suite::types::TlbPrefetcher;
use morrigan_suite::workloads::suites::smt_pairs;

fn main() {
    let pair = smt_pairs(1).remove(0);
    let run = SimConfig {
        warmup_instructions: 1_000_000,
        measure_instructions: 4_000_000,
    };
    println!("colocating: {}", pair.1.name);

    let specs = [
        RunSpec::smt(&pair, SystemConfig::default(), run, PrefetcherKind::None),
        RunSpec::smt(
            &pair,
            SystemConfig::default(),
            run,
            PrefetcherKind::MorriganSmt,
        ),
        // The paper's secondary observation: single-thread-sized tables
        // shared by two threads lose part of the gain.
        RunSpec::smt(
            &pair,
            SystemConfig::default(),
            run,
            MorriganConfig {
                max_threads: 2,
                ..MorriganConfig::default()
            },
        ),
    ];
    let records = Runner::from_env().run_batch(&specs);
    let base = &records[0].metrics;
    println!(
        "\nbaseline:  aggregate IPC {:.3}, iSTLB MPKI {:.2}",
        base.ipc(),
        base.istlb_mpki()
    );

    // The paper doubles the IRIP tables under SMT (7.5 KB) because two
    // threads build chains in the same tables.
    let smt_morrigan = Morrigan::new(MorriganConfig::smt());
    println!(
        "\nmorrigan-smt ({:.2} KB prediction state, per-thread miss registers)",
        smt_morrigan.storage_bits() as f64 / 8192.0
    );
    let m = &records[1].metrics;
    println!("  aggregate IPC  {:.3}", m.ipc());
    println!("  miss coverage  {:.1}%", m.coverage() * 100.0);
    println!(
        "  speedup        {:+.2}%",
        (m.speedup_over(base) - 1.0) * 100.0
    );

    // And without doubling, as the paper's secondary observation.
    let s = &records[2].metrics;
    println!(
        "\nmorrigan with single-thread tables: {:+.2}%",
        (s.speedup_over(base) - 1.0) * 100.0
    );
}
