//! SMT colocation: two server workloads share one core, its TLBs, caches,
//! page-table walker, and Morrigan's (doubled) prediction tables — the
//! paper's §6.6 setup.
//!
//! ```text
//! cargo run --release --example smt_colocation
//! ```

use morrigan_suite::prefetcher::{Morrigan, MorriganConfig};
use morrigan_suite::sim::{SimConfig, Simulator, SystemConfig};
use morrigan_suite::types::prefetcher::NullPrefetcher;
use morrigan_suite::workloads::suites::smt_pairs;
use morrigan_suite::workloads::ServerWorkload;

fn main() {
    let pair = smt_pairs(1).remove(0);
    let run = SimConfig {
        warmup_instructions: 1_000_000,
        measure_instructions: 4_000_000,
    };
    println!("colocating: {}", pair.1.name);

    let build = |prefetcher| {
        Simulator::new_smt(
            SystemConfig::default(),
            vec![
                Box::new(ServerWorkload::new(pair.0.clone())) as _,
                Box::new(ServerWorkload::new(pair.1.clone())) as _,
            ],
            prefetcher,
        )
    };

    let mut baseline = build(Box::new(NullPrefetcher));
    let base = baseline.run(run);
    println!(
        "\nbaseline:  aggregate IPC {:.3}, iSTLB MPKI {:.2}",
        base.ipc(),
        base.istlb_mpki()
    );
    println!(
        "STLB cross-thread contention: {} instr entries evicted by data fills",
        baseline.mmu().stlb().instr_evicted_by_data
    );

    // The paper doubles the IRIP tables under SMT (7.5 KB) because two
    // threads build chains in the same tables.
    let smt_morrigan = Morrigan::new(MorriganConfig::smt());
    println!(
        "\nmorrigan-smt ({:.2} KB prediction state, per-thread miss registers)",
        smt_morrigan.storage_bits_kb()
    );
    let mut with = build(Box::new(smt_morrigan));
    let m = with.run(run);
    println!("  aggregate IPC  {:.3}", m.ipc());
    println!("  miss coverage  {:.1}%", m.coverage() * 100.0);
    println!(
        "  speedup        {:+.2}%",
        (m.speedup_over(&base) - 1.0) * 100.0
    );

    // And without doubling, as the paper's secondary observation.
    let mut single = build(Box::new(Morrigan::new(MorriganConfig {
        max_threads: 2,
        ..MorriganConfig::default()
    })));
    let s = single.run(run);
    println!(
        "\nmorrigan with single-thread tables: {:+.2}%",
        (s.speedup_over(&base) - 1.0) * 100.0
    );
}

/// Convenience used above; kept local to the example.
trait StorageKb {
    fn storage_bits_kb(&self) -> f64;
}

impl StorageKb for Morrigan {
    fn storage_bits_kb(&self) -> f64 {
        use morrigan_suite::types::TlbPrefetcher;
        self.storage_bits() as f64 / 8192.0
    }
}
