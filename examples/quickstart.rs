//! Quickstart: run one server workload with and without Morrigan and
//! print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morrigan_suite::prefetcher::{Morrigan, MorriganConfig};
use morrigan_suite::runner::{PrefetcherKind, RunSpec, Runner};
use morrigan_suite::sim::{SimConfig, SystemConfig};
use morrigan_suite::types::TlbPrefetcher;
use morrigan_suite::workloads::ServerWorkloadConfig;

fn main() {
    // A QMM-class synthetic server workload: ~16-40 MB of code, deep call
    // chains, phase behaviour (see morrigan-workloads for the knobs).
    let workload = ServerWorkloadConfig::qmm_like("quickstart", 42);
    let run = SimConfig {
        warmup_instructions: 1_000_000,
        measure_instructions: 4_000_000,
    };

    println!(
        "workload: {} ({} code pages, {} data pages)",
        workload.name, workload.code_pages, workload.data_pages
    );

    // Declare both jobs and let the runner execute them (in parallel when
    // more than one worker thread is available — see MORRIGAN_THREADS).
    let runner = Runner::from_env();
    let specs = [
        RunSpec::server(
            &workload,
            SystemConfig::default(),
            run,
            PrefetcherKind::None,
        ),
        RunSpec::server(
            &workload,
            SystemConfig::default(),
            run,
            PrefetcherKind::Morrigan,
        ),
    ];
    let records = runner.run_batch(&specs);
    let (base, m) = (&records[0].metrics, &records[1].metrics);

    println!("\nbaseline (no STLB prefetching)");
    println!("  IPC                 {:.3}", base.ipc());
    println!("  iSTLB MPKI          {:.2}", base.istlb_mpki());
    println!(
        "  translation stalls  {:.1}% of cycles",
        base.istlb_cycle_fraction() * 100.0
    );
    println!(
        "  mean iSTLB walk     {:.0} cycles",
        base.walker.mean_instr_walk_latency()
    );

    // The same system with Morrigan attached (3.76 KB of prediction state).
    let morrigan = Morrigan::new(MorriganConfig::default());
    println!(
        "\nmorrigan ({:.2} KB prediction state)",
        morrigan.storage_bits() as f64 / 8192.0
    );
    println!("  IPC                 {:.3}", m.ipc());
    println!("  miss coverage       {:.1}%", m.coverage() * 100.0);
    println!(
        "  speedup             {:+.2}%",
        (m.speedup_over(base) - 1.0) * 100.0
    );
    println!(
        "  demand walk refs    {} -> {} ({:+.0}%)",
        base.demand_instr_walk_refs(),
        m.demand_instr_walk_refs(),
        (m.demand_instr_walk_refs() as f64 / base.demand_instr_walk_refs().max(1) as f64 - 1.0)
            * 100.0
    );
    println!("  prefetch walk refs  {}", m.prefetch_walk_refs());
}
