//! Anatomy of an instruction-STLB miss stream: reproduces the paper's §3.3
//! characterization (Findings 1–3) for one workload.
//!
//! ```text
//! cargo run --release --example miss_stream_anatomy [seed]
//! ```

use morrigan_suite::runner::{PrefetcherKind, RunSpec, Runner};
use morrigan_suite::sim::{SimConfig, SystemConfig};
use morrigan_suite::workloads::ServerWorkloadConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let cfg = ServerWorkloadConfig::qmm_like(format!("anatomy-{seed}"), seed);
    let mut system = SystemConfig::default();
    system.mmu.collect_stream_stats = true;

    let spec = RunSpec::server(
        &cfg,
        system,
        SimConfig {
            warmup_instructions: 1_000_000,
            measure_instructions: 6_000_000,
        },
        PrefetcherKind::None,
    );
    let record = Runner::from_env().run_one(&spec);
    let metrics = &record.metrics;
    let stream = record
        .miss_stream
        .as_ref()
        .expect("collect_stream_stats was set");

    println!(
        "workload {} — {} iSTLB misses over {} distinct pages",
        cfg.name,
        stream.total_misses,
        stream.page_hist.len()
    );
    println!("iSTLB MPKI {:.2}", metrics.istlb_mpki());

    println!("\nFinding 1 — spatial locality (delta CDF):");
    let bounds = [1u64, 2, 5, 10, 100, 1000, 10000];
    for (b, f) in bounds.iter().zip(stream.delta_cdf(&bounds)) {
        println!("  |delta| <= {b:<6} {:.1}%", f * 100.0);
    }

    println!("\nFinding 2 — page skew:");
    for frac in [0.5, 0.75, 0.9] {
        println!(
            "  {:.0}% of misses come from the hottest {} pages",
            frac * 100.0,
            stream.pages_covering(frac)
        );
    }

    println!("\nFinding 3 — successor structure:");
    let buckets = stream.successor_breakdown();
    for (label, frac) in ["1", "2", "3-4", "5-8", ">8"].iter().zip(buckets) {
        println!("  {:>3} successors: {:.1}% of pages", label, frac * 100.0);
    }
    let probs = stream.successor_probabilities(50);
    println!(
        "  top-50 pages: next miss hits the #1/#2/#3 successor {:.0}%/{:.0}%/{:.0}% of the time",
        probs[0] * 100.0,
        probs[1] * 100.0,
        probs[2] * 100.0
    );
}
