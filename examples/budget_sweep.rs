//! Budget sweep: how Morrigan's miss coverage and speedup scale with the
//! IRIP prediction-table storage (the paper's Fig 13 trade-off), on one
//! workload.
//!
//! ```text
//! cargo run --release --example budget_sweep [seed]
//! ```

use morrigan_suite::prefetcher::{IripConfig, Morrigan, MorriganConfig};
use morrigan_suite::sim::{SimConfig, Simulator, SystemConfig};
use morrigan_suite::types::prefetcher::NullPrefetcher;
use morrigan_suite::workloads::{ServerWorkload, ServerWorkloadConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let cfg = ServerWorkloadConfig::qmm_like(format!("sweep-{seed}"), seed);
    let run = SimConfig {
        warmup_instructions: 1_000_000,
        measure_instructions: 4_000_000,
    };

    let mut baseline = Simulator::new(
        SystemConfig::default(),
        Box::new(ServerWorkload::new(cfg.clone())),
        Box::new(NullPrefetcher),
    );
    let base = baseline.run(run);
    println!(
        "workload {}: baseline IPC {:.3}, iSTLB MPKI {:.2}\n",
        cfg.name,
        base.ipc(),
        base.istlb_mpki()
    );

    println!("{:>9}  {:>9}  {:>8}", "budget", "coverage", "speedup");
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let irip = IripConfig::fully_associative().scaled(factor);
        let kb = irip.storage_kb();
        let mcfg = MorriganConfig {
            irip,
            ..MorriganConfig::default()
        };
        let mut sim = Simulator::new(
            SystemConfig::default(),
            Box::new(ServerWorkload::new(cfg.clone())),
            Box::new(Morrigan::new(mcfg)),
        );
        let m = sim.run(run);
        println!(
            "{:>7.2}KB  {:>8.1}%  {:>+7.2}%",
            kb,
            m.coverage() * 100.0,
            (m.speedup_over(&base) - 1.0) * 100.0
        );
    }
    println!("\n(the paper's chosen operating point is the 3.80 KB row)");
}
