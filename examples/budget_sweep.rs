//! Budget sweep: how Morrigan's miss coverage and speedup scale with the
//! IRIP prediction-table storage (the paper's Fig 13 trade-off), on one
//! workload.
//!
//! ```text
//! cargo run --release --example budget_sweep [seed]
//! ```

use morrigan_suite::prefetcher::{IripConfig, MorriganConfig};
use morrigan_suite::runner::{PrefetcherKind, RunSpec, Runner};
use morrigan_suite::sim::{SimConfig, SystemConfig};
use morrigan_suite::workloads::ServerWorkloadConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let cfg = ServerWorkloadConfig::qmm_like(format!("sweep-{seed}"), seed);
    let run = SimConfig {
        warmup_instructions: 1_000_000,
        measure_instructions: 4_000_000,
    };

    // Declare the whole sweep up front; the runner executes the points in
    // parallel when worker threads are available.
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut specs = vec![RunSpec::server(
        &cfg,
        SystemConfig::default(),
        run,
        PrefetcherKind::None,
    )];
    let mut budgets_kb = Vec::new();
    for factor in factors {
        let irip = IripConfig::fully_associative().scaled(factor);
        budgets_kb.push(irip.storage_kb());
        let mcfg = MorriganConfig {
            irip,
            ..MorriganConfig::default()
        };
        specs.push(RunSpec::server(&cfg, SystemConfig::default(), run, mcfg));
    }

    let runner = Runner::from_env();
    let records = runner.run_batch(&specs);
    let base = &records[0].metrics;
    println!(
        "workload {}: baseline IPC {:.3}, iSTLB MPKI {:.2}\n",
        cfg.name,
        base.ipc(),
        base.istlb_mpki()
    );

    println!("{:>9}  {:>9}  {:>8}", "budget", "coverage", "speedup");
    for (kb, record) in budgets_kb.iter().zip(&records[1..]) {
        let m = &record.metrics;
        println!(
            "{:>7.2}KB  {:>8.1}%  {:>+7.2}%",
            kb,
            m.coverage() * 100.0,
            (m.speedup_over(base) - 1.0) * 100.0
        );
    }
    println!("\n(the paper's chosen operating point is the 3.80 KB row)");
}
