//! Shootout: every STLB prefetcher in the workspace on the same workloads
//! at the same 3.76 KB storage budget (the paper's Fig 15 comparison),
//! plus the idealized upper bounds.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use morrigan_suite::experiments::common::{baseline_spec, server_spec, Scale};
use morrigan_suite::runner::{PrefetcherKind, RunSpec, Runner};
use morrigan_suite::sim::SystemConfig;
use morrigan_suite::types::stats::geometric_mean;

const KINDS: [PrefetcherKind; 8] = [
    PrefetcherKind::Sp,
    PrefetcherKind::AspIso,
    PrefetcherKind::DpIso,
    PrefetcherKind::MpIso,
    PrefetcherKind::MpUnbounded2,
    PrefetcherKind::MpUnboundedInf,
    PrefetcherKind::MorriganMono,
    PrefetcherKind::Morrigan,
];

fn main() {
    let scale = Scale {
        warmup: 500_000,
        measure: 2_000_000,
        workloads: 4,
        smt_pairs: 1,
        cores: 2,
        tenants: 2,
    };
    let suite = scale.suite();
    let n = suite.len();

    // One batch: baselines, each contender, then the perfect-iSTLB bound.
    let mut specs: Vec<RunSpec> = suite.iter().map(|cfg| baseline_spec(cfg, &scale)).collect();
    for kind in KINDS {
        specs.extend(suite.iter().map(|cfg| server_spec(cfg, &scale, kind)));
    }
    let mut perfect_system = SystemConfig::default();
    perfect_system.mmu.perfect_istlb = true;
    specs.extend(
        suite
            .iter()
            .map(|cfg| RunSpec::server(cfg, perfect_system, scale.sim(), PrefetcherKind::None)),
    );

    println!(
        "running {} workloads x {} prefetchers...",
        suite.len(),
        KINDS.len()
    );
    let runner = Runner::from_env();
    let records = runner.run_batch(&specs);
    let baselines = &records[..n];

    println!("{:<18} {:>9} {:>10}", "prefetcher", "speedup", "coverage");
    for (k, kind) in KINDS.iter().enumerate() {
        let chunk = &records[n * (k + 1)..n * (k + 2)];
        let speedups: Vec<f64> = chunk
            .iter()
            .zip(baselines)
            .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
            .collect();
        let coverage: f64 = chunk
            .iter()
            .map(|record| record.metrics.coverage())
            .sum::<f64>()
            / n as f64;
        println!(
            "{:<18} {:>8.2}% {:>9.1}%",
            kind.name(),
            (geometric_mean(&speedups) - 1.0) * 100.0,
            coverage * 100.0
        );
    }

    // The perfect-iSTLB ceiling for context.
    let speedups: Vec<f64> = records[n * (KINDS.len() + 1)..]
        .iter()
        .zip(baselines)
        .map(|(record, base)| record.metrics.speedup_over(&base.metrics))
        .collect();
    println!(
        "{:<18} {:>8.2}%",
        "perfect-istlb",
        (geometric_mean(&speedups) - 1.0) * 100.0
    );
}
