//! Shootout: every STLB prefetcher in the workspace on the same workloads
//! at the same 3.76 KB storage budget (the paper's Fig 15 comparison),
//! plus the idealized upper bounds.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use morrigan_suite::experiments::common::{run_server, PrefetcherKind, Scale};
use morrigan_suite::sim::SystemConfig;
use morrigan_suite::types::prefetcher::NullPrefetcher;
use morrigan_suite::types::stats::geometric_mean;

fn main() {
    let scale = Scale {
        warmup: 500_000,
        measure: 2_000_000,
        workloads: 4,
        smt_pairs: 1,
    };
    let suite = scale.suite();

    println!("running {} workloads x {} prefetchers...", suite.len(), 8);
    let baselines: Vec<_> = suite
        .iter()
        .map(|cfg| {
            run_server(
                cfg,
                SystemConfig::default(),
                scale.sim(),
                Box::new(NullPrefetcher),
            )
        })
        .collect();

    println!("{:<18} {:>9} {:>10}", "prefetcher", "speedup", "coverage");
    for kind in [
        PrefetcherKind::Sp,
        PrefetcherKind::AspIso,
        PrefetcherKind::DpIso,
        PrefetcherKind::MpIso,
        PrefetcherKind::MpUnbounded2,
        PrefetcherKind::MpUnboundedInf,
        PrefetcherKind::MorriganMono,
        PrefetcherKind::Morrigan,
    ] {
        let mut speedups = Vec::new();
        let mut coverage = 0.0;
        for (cfg, base) in suite.iter().zip(&baselines) {
            let m = run_server(cfg, SystemConfig::default(), scale.sim(), kind.build());
            speedups.push(m.speedup_over(base));
            coverage += m.coverage();
        }
        println!(
            "{:<18} {:>8.2}% {:>9.1}%",
            kind.name(),
            (geometric_mean(&speedups) - 1.0) * 100.0,
            coverage / suite.len() as f64 * 100.0
        );
    }

    // The perfect-iSTLB ceiling for context.
    let mut perfect_system = SystemConfig::default();
    perfect_system.mmu.perfect_istlb = true;
    let speedups: Vec<f64> = suite
        .iter()
        .zip(&baselines)
        .map(|(cfg, base)| {
            run_server(cfg, perfect_system, scale.sim(), Box::new(NullPrefetcher))
                .speedup_over(base)
        })
        .collect();
    println!(
        "{:<18} {:>8.2}%",
        "perfect-istlb",
        (geometric_mean(&speedups) - 1.0) * 100.0
    );
}
